//! A minimal JSON document builder and parser.
//!
//! The build environment has no serde, so this module provides just enough:
//! an ordered [`Value`] tree with escaping-correct pretty printing, plus a
//! strict recursive-descent [`parse`] so scenario specs and committed repro
//! baselines can be read back. Object keys keep insertion order so emitted
//! files are byte-stable run to run.

use std::fmt;

/// An ordered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. JSON has no representation for NaN/infinity, so `Display`
    /// falls back to `null` for them — report emission must therefore go
    /// through [`Value::to_json_string`], which rejects non-finite numbers
    /// instead of silently corrupting the document.
    Num(f64),
    /// An unsigned integer, serialised exactly (not via `f64`, which would
    /// silently round values above 2^53 — seeds can be any `u64`).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An object builder starting empty.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends a key/value pair (objects only).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object — misuse is a programming error in
    /// report-building code, not a runtime condition.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Value::with called on a non-object"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of a [`Value::Num`] or [`Value::Uint`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The integer value of a [`Value::Uint`], or of a [`Value::Num`] that
    /// is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            // Strictly below u64::MAX-as-f64 (= 2^64): the cast is then
            // exact for every integral double, never saturating.
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The borrowed contents of a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of a [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value of a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Walks the tree and reports the first non-finite [`Value::Num`], with
    /// a JSON-path to it.
    ///
    /// # Errors
    ///
    /// [`NonFiniteError`] naming the offending path and value.
    pub fn check_finite(&self) -> Result<(), NonFiniteError> {
        fn walk(v: &Value, path: &mut String) -> Result<(), NonFiniteError> {
            match v {
                Value::Num(n) if !n.is_finite() => Err(NonFiniteError {
                    path: if path.is_empty() { "$".to_string() } else { path.clone() },
                    value: *n,
                }),
                Value::Arr(items) => {
                    for (i, item) in items.iter().enumerate() {
                        let len = path.len();
                        path.push_str(&format!("[{i}]"));
                        walk(item, path)?;
                        path.truncate(len);
                    }
                    Ok(())
                }
                Value::Obj(pairs) => {
                    for (key, value) in pairs {
                        let len = path.len();
                        path.push_str(&format!(".{key}"));
                        walk(value, path)?;
                        path.truncate(len);
                    }
                    Ok(())
                }
                _ => Ok(()),
            }
        }
        walk(self, &mut String::new())
    }

    /// Serialises the document, rejecting non-finite numbers instead of
    /// coercing them to `null` (which would round-trip as [`Value::Null`]
    /// and corrupt report diffs undetected). All file-emission paths go
    /// through this; `Display` remains lossy and is for logs only.
    ///
    /// # Errors
    ///
    /// [`NonFiniteError`] naming the path of the first non-finite number.
    pub fn to_json_string(&self) -> Result<String, NonFiniteError> {
        self.check_finite()?;
        Ok(self.to_string())
    }
}

/// A document contained a NaN or infinite number at emission time.
#[derive(Clone, Debug, PartialEq)]
pub struct NonFiniteError {
    /// JSON-path of the offending number (`$` for a bare root value).
    pub path: String,
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-finite number {} at {} has no JSON representation", self.value, self.path)
    }
}

impl std::error::Error for NonFiniteError {}

/// Parses a JSON document into a [`Value`].
///
/// Strict JSON (no comments, no trailing commas); object key order is
/// preserved, and duplicate keys are rejected so a hand-edited spec cannot
/// silently half-apply. Non-negative integers without fraction or exponent
/// parse as [`Value::Uint`] (exact for any `u64` seed), everything else
/// numeric as [`Value::Num`].
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        self.err_at(self.pos, what)
    }

    /// An error anchored at an explicit byte offset — used when the problem
    /// is detected after the cursor has moved past it (duplicate keys).
    fn err_at(&self, pos: usize, what: &str) -> String {
        format!("JSON error at byte {pos}: {what}")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_start = self.pos;
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                // Point at the duplicate's opening quote, not wherever the
                // cursor drifted to after reading it — a hand-edited spec
                // should be fixable straight from the offset.
                return Err(self.err_at(key_start, &format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&c) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writer; map
                            // them to the replacement character on input.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (the input is a &str, so the
                    // byte sequence is valid by construction).
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Strict JSON integer part: `0` or a non-zero digit followed by
        // more digits — `01` and a bare `-` are rejected, as every
        // conforming tool would.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zeros are not valid JSON"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                self.digits();
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected a digit after the decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected a digit in the exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err(&format!("invalid number {text:?}"))),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Uint(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Uint(n as u64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

fn write_num(n: f64, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !n.is_finite() {
        return out.write_str("null");
    }
    // Integers print without a trailing `.0` so counts look like counts.
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(out, "{}", n as i64)
    } else {
        write!(out, "{n}")
    }
}

fn write_value(v: &Value, indent: usize, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Num(n) => write_num(*n, out),
        Value::Uint(n) => write!(out, "{n}"),
        Value::Str(s) => escape(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                return out.write_str("[]");
            }
            // Scalar-only arrays stay on one line; nested ones break.
            let scalar = items.iter().all(|i| !matches!(i, Value::Arr(_) | Value::Obj(_)));
            if scalar {
                out.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_str(", ")?;
                    }
                    write_value(item, indent, out)?;
                }
                out.write_str("]")
            } else {
                out.write_str("[\n")?;
                for (i, item) in items.iter().enumerate() {
                    out.write_str(&inner)?;
                    write_value(item, indent + 1, out)?;
                    if i + 1 < items.len() {
                        out.write_str(",")?;
                    }
                    out.write_str("\n")?;
                }
                write!(out, "{pad}]")
            }
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                return out.write_str("{}");
            }
            out.write_str("{\n")?;
            for (i, (key, value)) in pairs.iter().enumerate() {
                out.write_str(&inner)?;
                escape(key, out)?;
                out.write_str(": ")?;
                write_value(value, indent + 1, out)?;
                if i + 1 < pairs.len() {
                    out.write_str(",")?;
                }
                out.write_str("\n")?;
            }
            write!(out, "{pad}}}")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Value::obj()
            .with("name", "fig3")
            .with("runs", 90u64)
            .with("wall_ms", 12.5)
            .with("seeds", vec![1u64, 2])
            .with("ok", true)
            .with("missing", Value::Null);
        let s = doc.to_string();
        assert!(s.contains("\"name\": \"fig3\""));
        assert!(s.contains("\"runs\": 90"), "integers print bare: {s}");
        assert!(s.contains("\"wall_ms\": 12.5"));
        assert!(s.contains("\"seeds\": [1, 2]"));
        assert!(s.contains("\"missing\": null"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Value::Str("a\"b\\c\nd\u{1}".into()).to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_fail_checked_emission() {
        // Display stays lossy (logs), but the emission path must refuse: a
        // NaN serialised as `null` round-trips as Value::Null and corrupts
        // report diffs undetected.
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
        let err = Value::Num(f64::NAN).to_json_string().unwrap_err();
        assert_eq!(err.path, "$");
        assert!(err.value.is_nan());
        let doc = Value::obj()
            .with("ok", 1.5)
            .with("tables", vec![Value::Arr(vec![Value::Num(2.0), Value::Num(f64::INFINITY)])]);
        let err = doc.to_json_string().unwrap_err();
        assert_eq!(err.path, ".tables[0][1]", "the error pins the offending cell");
        assert_eq!(err.value, f64::INFINITY);
        assert!(err.to_string().contains(".tables[0][1]"), "{err}");
        // Finite documents emit exactly what Display renders.
        let clean = Value::obj().with("x", 2.5).with("n", 3u64);
        assert_eq!(clean.to_json_string().unwrap(), clean.to_string());
        assert!(clean.check_finite().is_ok());
    }

    #[test]
    fn u64_values_serialise_exactly() {
        // 2^53 + 1 is not representable as f64; seeds are arbitrary u64s.
        let seed = (1u64 << 53) + 1;
        assert_eq!(Value::from(seed).to_string(), "9007199254740993");
        assert_eq!(Value::from(u64::MAX).to_string(), "18446744073709551615");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Arr(vec![]).to_string(), "[]");
        assert_eq!(Value::obj().to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn with_on_scalar_panics() {
        let _ = Value::Null.with("k", 1u64);
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let doc = Value::obj()
            .with("name", "sweep")
            .with("seed", (1u64 << 53) + 1)
            .with("rate", -2.5)
            .with("grid", vec![1u64, 2, 3])
            .with("nested", Value::obj().with("ok", true).with("none", Value::Null));
        let text = doc.to_string();
        let back = parse(&text).expect("emitted JSON must parse");
        assert_eq!(back, doc);
        // Re-emission is byte-stable.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(parse("7").unwrap(), Value::Uint(7));
        assert_eq!(parse("18446744073709551615").unwrap(), Value::Uint(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Value::Num(-3.0));
        assert_eq!(parse("2.5e2").unwrap(), Value::Num(250.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":1,}", "{\"a\":1 \"b\":2}", "tru", "1 2", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let dup = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(dup.contains("duplicate"), "{dup}");
    }

    #[test]
    fn duplicate_keys_are_rejected_at_their_own_offset() {
        // A spec file must not silently half-apply: the second "seed" is a
        // hard error, anchored at the duplicate key's opening quote so the
        // author can jump straight to it.
        let text = "{\"seed\": 1, \"seed\": 2}";
        let err = parse(text).unwrap_err();
        assert_eq!(err, "JSON error at byte 12: duplicate object key \"seed\"");
        assert_eq!(&text[12..13], "\"", "offset 12 is the duplicate's opening quote");
        // Nested objects keep their own key namespaces…
        assert!(parse("{\"a\": {\"k\": 1}, \"b\": {\"k\": 2}}").is_ok());
        // …but duplicates inside a nested object are still caught, at the
        // nested offset.
        let nested = parse("{\"outer\": {\"k\": 1, \"k\": 2}}").unwrap_err();
        assert_eq!(nested, "JSON error at byte 19: duplicate object key \"k\"");
    }

    #[test]
    fn parse_errors_pin_exact_byte_offsets() {
        for (text, want) in [
            ("[1,]", "JSON error at byte 3: expected a JSON value"),
            ("{\"a\":1,}", "JSON error at byte 7: expected '\"'"),
            ("{\"a\":1 \"b\":2}", "JSON error at byte 7: expected ',' or '}' in object"),
            ("[1 2]", "JSON error at byte 3: expected ',' or ']' in array"),
            ("\"unterminated", "JSON error at byte 13: unterminated string"),
            ("01", "JSON error at byte 1: leading zeros are not valid JSON"),
            ("[1] x", "JSON error at byte 4: trailing characters after the document"),
        ] {
            assert_eq!(parse(text).unwrap_err(), want, "offset drifted for {text:?}");
        }
    }

    #[test]
    fn parse_enforces_the_json_number_grammar() {
        // Forms every conforming JSON tool rejects must not slip through a
        // hand-edited spec here either.
        for bad in ["01", "-01", "1.", "-.5", ".5", "-", "1e", "1e+", "+1"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(parse("0").unwrap(), Value::Uint(0));
        assert_eq!(parse("-0.5").unwrap(), Value::Num(-0.5));
        assert_eq!(parse("10.25e-2").unwrap(), Value::Num(0.1025));
    }

    #[test]
    fn as_u64_never_saturates() {
        // An integral double just above u64::MAX must be rejected, not
        // silently clamped to u64::MAX.
        assert_eq!(Value::Num(18_500_000_000_000_000_000.0).as_u64(), None);
        assert_eq!(Value::Num(2.0f64.powi(64)).as_u64(), None);
        let largest_exact = (u64::MAX >> 11) << 11; // representable & < 2^64
        assert_eq!(Value::Num(largest_exact as f64).as_u64(), Some(largest_exact));
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = parse("\"a\\\"b\\\\c\\nd\\u0041\"").unwrap();
        assert_eq!(v, Value::Str("a\"b\\c\nd A".replace("d A", "d\u{41}")));
    }

    #[test]
    fn accessors_read_typed_fields() {
        let doc = parse("{\"n\": 3, \"x\": 1.5, \"s\": \"hi\", \"b\": false, \"a\": [1]}").unwrap();
        assert_eq!(doc.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(doc.get("x").and_then(Value::as_f64), Some(1.5));
        assert_eq!(doc.get("x").and_then(Value::as_u64), None);
        assert_eq!(doc.get("s").and_then(Value::as_str), Some("hi"));
        assert_eq!(doc.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(doc.get("a").and_then(Value::as_arr).map(<[Value]>::len), Some(1));
        assert!(doc.get("missing").is_none());
        assert!(Value::Null.get("k").is_none());
    }
}
