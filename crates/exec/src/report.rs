//! Machine-readable repro reports.
//!
//! Each experiment artefact (figure/table) is written as one JSON file under
//! the repro directory (default `target/repro/`), carrying the rendered
//! result tables *and* the execution accounting — wall-clock, run count,
//! summed busy time, worker count — so benchmark trajectories can be
//! tracked across commits with `jq` instead of scraping stdout.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;

use wmn_metrics::Table;

use crate::json::Value;
use crate::telemetry::Snapshot;

/// Environment variable overriding the report directory.
pub const REPRO_DIR_ENV: &str = "RIPPLE_REPRO_DIR";

/// The directory repro JSON is written to: [`REPRO_DIR_ENV`] if set,
/// otherwise `target/repro` under the current working directory.
pub fn repro_dir() -> PathBuf {
    // lint:allow(no-nondeterministic-std): redirects where reports are written, never what they contain
    match std::env::var_os(REPRO_DIR_ENV) {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("repro"),
    }
}

/// Execution accounting attached to one artefact report.
#[derive(Clone, Copy, Debug)]
pub struct ArtifactTiming {
    /// Wall-clock time spent generating the artefact.
    pub wall: Duration,
    /// Executor counters accumulated while generating it.
    pub exec: Snapshot,
    /// Worker count the generating config requested.
    pub jobs: usize,
}

/// The JSON shape of one rendered [`Table`] (`title` / `headers` / `rows`),
/// shared by the artefact reports and the sweep documents.
pub fn table_value(table: &Table) -> Value {
    Value::obj()
        .with("title", table.title())
        .with("headers", table.headers().to_vec())
        .with("rows", Value::Arr(table.rows().iter().map(|row| Value::from(row.clone())).collect()))
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Builds the JSON document for one artefact.
pub fn artifact_document(
    name: &str,
    tables: &[Table],
    timing: &ArtifactTiming,
    duration_secs: f64,
    seeds: &[u64],
) -> Value {
    Value::obj()
        .with("artefact", name)
        .with(
            "config",
            Value::obj()
                .with("duration_secs", duration_secs)
                .with("seeds", seeds.to_vec())
                .with("jobs", timing.jobs),
        )
        .with(
            "timing",
            Value::obj()
                .with("wall_ms", ms(timing.wall))
                .with("busy_ms", ms(timing.exec.busy))
                .with("runs", timing.exec.runs)
                .with("plans", timing.exec.plans),
        )
        .with("tables", Value::Arr(tables.iter().map(table_value).collect()))
}

/// Writes one artefact report as `<dir>/<name>.json` and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, full disk, …), and
/// fails with [`std::io::ErrorKind::InvalidData`] if the document contains a
/// non-finite number — a NaN in a report must abort emission, not be
/// laundered into `null`.
pub fn write_artifact(
    dir: &Path,
    name: &str,
    tables: &[Table],
    timing: &ArtifactTiming,
    duration_secs: f64,
    seeds: &[u64],
) -> std::io::Result<PathBuf> {
    let doc = artifact_document(name, tables, timing, duration_secs, seeds);
    write_document(dir, name, &doc)
}

/// Writes any JSON document as `<dir>/<name>.json` (newline-terminated)
/// through the checked emission path, and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors; [`std::io::ErrorKind::InvalidData`] if the
/// document contains a non-finite number.
pub fn write_document(dir: &Path, name: &str, doc: &Value) -> std::io::Result<PathBuf> {
    let text = doc.to_json_string().map_err(|err| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{name}: {err}"))
    })?;
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{text}")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> ArtifactTiming {
        ArtifactTiming {
            wall: Duration::from_millis(250),
            exec: Snapshot { plans: 1, runs: 6, busy: Duration::from_millis(900) },
            jobs: 4,
        }
    }

    #[test]
    fn document_carries_tables_and_timing() {
        let mut t = Table::new("Fig. X", vec!["scheme", "v"]);
        t.add_numeric_row("RIPPLE", &[21.37]);
        let doc = artifact_document("figx", &[t], &timing(), 1.0, &[1, 2]);
        let s = doc.to_string();
        assert!(s.contains("\"artefact\": \"figx\""));
        assert!(s.contains("\"seeds\": [1, 2]"));
        assert!(s.contains("\"runs\": 6"));
        assert!(s.contains("\"jobs\": 4"));
        assert!(s.contains("\"21.37\""));
        assert!(s.contains("\"busy_ms\": 900"));
    }

    #[test]
    fn writes_file_into_fresh_directory() {
        let dir = std::env::temp_dir().join(format!("wmn-exec-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Table::new("T", vec!["a"]);
        let path = write_artifact(&dir, "t", &[t], &timing(), 0.5, &[7]).expect("writable");
        let body = std::fs::read_to_string(&path).expect("file exists");
        assert!(body.contains("\"artefact\": \"t\""));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn non_finite_values_abort_emission() {
        let dir = std::env::temp_dir().join(format!("wmn-exec-nonfinite-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Table::new("T", vec!["a"]);
        let err = write_artifact(&dir, "bad", &[t], &timing(), f64::NAN, &[7])
            .expect_err("a NaN config value must not serialise");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duration_secs"), "error names the path: {err}");
        assert!(!dir.join("bad.json").exists(), "no partial file left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_dir_is_target_repro() {
        // Only meaningful when the override is unset (it is, in tests).
        if std::env::var_os(REPRO_DIR_ENV).is_none() {
            assert_eq!(repro_dir(), PathBuf::from("target").join("repro"));
        }
    }
}
