//! # wmn_exec — the parallel experiment engine
//!
//! Every figure and table of the paper is a seed-average over independent
//! `(Scenario, seed)` simulations — embarrassingly parallel by construction.
//! This crate fans those runs across a [`std::thread::scope`] worker pool
//! while keeping the results **bit-identical to a serial loop**:
//!
//! * a [`RunPlan`] fixes the result order up front (scenario-major,
//!   seed-minor for [`RunPlan::grid`]);
//! * the [`Executor`] hands plan indices to workers through an atomic
//!   counter and stores each [`wmn_netsim::RunResult`] in the slot of its
//!   plan index, so scheduling order never leaks into the output;
//! * each run derives all randomness from its own scenario seed via
//!   [`wmn_sim::RngDirectory`] — runs share no mutable state (`Scenario`
//!   and `RunResult` are `Send`, enforced at compile time in `wmn_netsim`).
//!
//! The worker count comes from the `RIPPLE_JOBS` environment variable
//! ([`jobs_from_env`]), defaulting to the host's available parallelism.
//! `RIPPLE_SHARDS` ([`shards_from_env`]) additionally forces every run onto
//! the sharded intra-scenario engine at a fixed shard count — the CI
//! shard-determinism job uses it to byte-compare whole sweep reports at
//! 1, 2, and 8 shards without editing the specs.
//!
//! ## Reports
//!
//! [`report`] writes per-artefact JSON (result tables + wall-clock/busy/run
//! accounting) under `target/repro/`, and [`telemetry`] exposes the global
//! counters drivers use to attribute runs to artefacts.
//!
//! ## Example
//!
//! ```
//! use wmn_exec::{Executor, RunPlan};
//! use wmn_netsim::{FlowSpec, Scenario, Scheme, Workload};
//! use wmn_phy::{PhyParams, Position};
//! use wmn_sim::{NodeId, SimDuration};
//!
//! let scenario = Scenario {
//!     name: "demo".into(),
//!     params: PhyParams::paper_216(),
//!     positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
//!     scheme: Scheme::Dcf { aggregation: 1 },
//!     flows: vec![FlowSpec {
//!         path: vec![NodeId::new(0), NodeId::new(1)],
//!         workload: Workload::Ftp,
//!     }],
//!     duration: SimDuration::from_millis(5),
//!     seed: 0,
//!     max_forwarders: 5,
//!     motion: wmn_netsim::MotionPlan::default(),
//!     route_refresh: None,
//!     shards: None,
//! };
//! let plan = RunPlan::grid(
//!     std::slice::from_ref(&scenario),
//!     &[1, 2, 3],
//!     SimDuration::from_millis(5),
//! );
//! let outcome = Executor::new(2).execute(&plan);
//! assert_eq!(outcome.results.len(), 3); // plan order: seeds 1, 2, 3
//! ```

pub mod executor;
pub mod json;
pub mod plan;
pub mod report;
pub mod telemetry;
pub mod trace;

pub use executor::{
    available_jobs, jobs_from_env, shards_from_env, ExecOutcome, ExecStats, Executor, JOBS_ENV,
    SHARDS_ENV,
};
pub use plan::{RunPlan, RunSpec};
pub use trace::{trace_document, validate_trace, TRACE_SCHEMA};
