//! Process-wide execution counters.
//!
//! Every [`Executor::execute`](crate::Executor::execute) call records its
//! [`ExecStats`] here, so a driver composed of many
//! independent generator calls (e.g. `repro_all`, whose figure modules each
//! run their own plans) can attribute runs and busy-time to each artefact
//! without threading accounting through every generator signature: snapshot
//! with [`take`] around each call and diff.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::executor::ExecStats;

static PLANS: AtomicU64 = AtomicU64::new(0);
static RUNS: AtomicU64 = AtomicU64::new(0);
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Cumulative execution counters since the last [`take`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Plans executed.
    pub plans: u64,
    /// Individual simulation runs executed.
    pub runs: u64,
    /// Summed per-run execution time across all workers.
    pub busy: Duration,
}

impl std::ops::AddAssign for Snapshot {
    /// Totalling per-artefact snapshots back up (each [`take`] resets the
    /// globals, so a driver summing per-phase deltas needs this).
    fn add_assign(&mut self, other: Snapshot) {
        self.plans += other.plans;
        self.runs += other.runs;
        self.busy += other.busy;
    }
}

pub(crate) fn record(stats: &ExecStats) {
    PLANS.fetch_add(1, Ordering::Relaxed);
    RUNS.fetch_add(stats.runs as u64, Ordering::Relaxed);
    BUSY_NS.fetch_add(stats.busy.as_nanos() as u64, Ordering::Relaxed);
}

/// Returns the counters accumulated since the previous `take` (or process
/// start) and resets them to zero.
pub fn take() -> Snapshot {
    Snapshot {
        plans: PLANS.swap(0, Ordering::Relaxed),
        runs: RUNS.swap(0, Ordering::Relaxed),
        busy: Duration::from_nanos(BUSY_NS.swap(0, Ordering::Relaxed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_take_resets() {
        // Other tests in this binary may execute plans concurrently, so only
        // assert on the delta this test itself contributes.
        let before = take();
        record(&ExecStats {
            runs: 3,
            jobs: 2,
            wall: Duration::from_millis(4),
            busy: Duration::from_millis(7),
        });
        let snap = take();
        assert!(snap.plans >= 1);
        assert!(snap.runs >= 3);
        assert!(snap.busy >= Duration::from_millis(7));
        let _ = before;
    }
}
