//! Structured packet traces: the JSON form of a [`wmn_netsim::Trace`].
//!
//! A run recorded with [`wmn_netsim::run_traced`] yields an in-memory event
//! timeline; this module turns it into a stable, self-describing JSON
//! document (`wmn-trace-v1`) that offline tools — the `trace_render` bin,
//! ad-hoc scripts, CI smoke checks — can consume without linking the
//! simulator. Tracing stays zero-cost when off: [`wmn_netsim::run`] never
//! allocates a timeline, and this module only ever sees a finished trace.
//!
//! One record per event, in time order. Every record carries `at_ns` (the
//! exact simulation timestamp — nanoseconds serialise as integers, so the
//! document round-trips bit-for-bit), `node`, and a `type` discriminator:
//!
//! | `type`         | extra fields                                       |
//! |----------------|----------------------------------------------------|
//! | `tx`           | `frame`, `flow`, `frame_seq`, `subframes`, `wire_bytes` |
//! | `tx_end`       | —                                                  |
//! | `rx`           | `frame`, `from`, `flow`, `frame_seq`               |
//! | `deliver`      | `flow`                                             |
//! | `drop`         | `flow`, `reason` (`queue_full` / `retry_limit`)    |
//! | `forward`      | `flow`, `next_hop`                                 |
//! | `route_change` | `flow`, `path`                                     |

use wmn_netsim::{DropReason, FrameKind, Trace, TraceKind};

use crate::json::Value;

/// The `schema` tag every trace document carries.
pub const TRACE_SCHEMA: &str = "wmn-trace-v1";

fn frame_name(kind: FrameKind) -> &'static str {
    match kind {
        FrameKind::Data => "data",
        FrameKind::Ack => "ack",
    }
}

fn reason_name(reason: DropReason) -> &'static str {
    match reason {
        DropReason::QueueFull => "queue_full",
        DropReason::RetryLimit => "retry_limit",
    }
}

/// Serialises a finished trace as a `wmn-trace-v1` document.
pub fn trace_document(scenario_name: &str, trace: &Trace) -> Value {
    let events = trace
        .events
        .iter()
        .map(|e| {
            let base = Value::obj()
                .with("at_ns", e.at.as_nanos())
                .with("node", u64::from(e.node.index() as u32));
            match &e.kind {
                TraceKind::TxStart { kind, flow, frame_seq, subframes, wire_bytes } => base
                    .with("type", "tx")
                    .with("frame", frame_name(*kind))
                    .with("flow", u64::from(flow.index() as u32))
                    .with("frame_seq", *frame_seq)
                    .with("subframes", *subframes as u64)
                    .with("wire_bytes", u64::from(*wire_bytes)),
                TraceKind::TxEnd => base.with("type", "tx_end"),
                TraceKind::Decoded { kind, from, flow, frame_seq } => base
                    .with("type", "rx")
                    .with("frame", frame_name(*kind))
                    .with("from", u64::from(from.index() as u32))
                    .with("flow", u64::from(flow.index() as u32))
                    .with("frame_seq", *frame_seq),
                TraceKind::Delivered { flow } => {
                    base.with("type", "deliver").with("flow", u64::from(flow.index() as u32))
                }
                TraceKind::Drop { flow, reason } => base
                    .with("type", "drop")
                    .with("flow", u64::from(flow.index() as u32))
                    .with("reason", reason_name(*reason)),
                TraceKind::Forward { flow, next_hop } => base
                    .with("type", "forward")
                    .with("flow", u64::from(flow.index() as u32))
                    .with("next_hop", u64::from(next_hop.index() as u32)),
                TraceKind::RouteChange { flow, path } => base
                    .with("type", "route_change")
                    .with("flow", u64::from(flow.index() as u32))
                    .with(
                        "path",
                        Value::Arr(path.iter().map(|n| Value::Uint(n.index() as u64)).collect()),
                    ),
            }
        })
        .collect();
    Value::obj()
        .with("schema", TRACE_SCHEMA)
        .with("scenario", scenario_name)
        .with("events", Value::Arr(events))
}

/// The record types `wmn-trace-v1` admits, with their required extra fields.
const EVENT_FIELDS: &[(&str, &[&str])] = &[
    ("tx", &["frame", "flow", "frame_seq", "subframes", "wire_bytes"]),
    ("tx_end", &[]),
    ("rx", &["frame", "from", "flow", "frame_seq"]),
    ("deliver", &["flow"]),
    ("drop", &["flow", "reason"]),
    ("forward", &["flow", "next_hop"]),
    ("route_change", &["flow", "path"]),
];

/// Validates a document against the `wmn-trace-v1` schema: tag, scenario
/// name, and every event record's required fields, types, and
/// non-decreasing timestamps. Returns the event count.
///
/// # Errors
///
/// A message naming the first offending record and what is wrong with it.
pub fn validate_trace(doc: &Value) -> Result<usize, String> {
    let schema = doc.get("schema").and_then(Value::as_str);
    if schema != Some(TRACE_SCHEMA) {
        return Err(format!("trace: \"schema\" must be {TRACE_SCHEMA:?}, got {schema:?}"));
    }
    doc.get("scenario").and_then(Value::as_str).ok_or("trace: missing \"scenario\"")?;
    let events =
        doc.get("events").and_then(Value::as_arr).ok_or("trace: missing \"events\" array")?;
    let mut last_at = 0u64;
    for (i, event) in events.iter().enumerate() {
        let err = |msg: String| format!("trace: event {i}: {msg}");
        let at = event
            .get("at_ns")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing or non-integer \"at_ns\"".into()))?;
        if at < last_at {
            return Err(err(format!("timestamp {at} ns precedes the previous record")));
        }
        last_at = at;
        event
            .get("node")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("missing or non-integer \"node\"".into()))?;
        let ty = event
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| err("missing or non-string \"type\"".into()))?;
        let Some((_, required)) = EVENT_FIELDS.iter().find(|(name, _)| *name == ty) else {
            return Err(err(format!("unknown type {ty:?}")));
        };
        for field in *required {
            if event.get(field).is_none() {
                return Err(err(format!("type {ty:?} requires field {field:?}")));
            }
        }
        if ty == "route_change" {
            let path = event.get("path").and_then(Value::as_arr).unwrap_or(&[]);
            if path.len() < 2 || path.iter().any(|n| n.as_u64().is_none()) {
                return Err(err("\"path\" must be an array of at least two node ids".into()));
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_netsim::{run, run_traced, FlowSpec, MotionPlan, Scenario, Scheme, Workload};
    use wmn_phy::{PhyParams, Position};
    use wmn_sim::{NodeId, SimDuration};

    fn scenario() -> Scenario {
        Scenario {
            name: "trace-demo".into(),
            params: PhyParams::paper_216(),
            positions: (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect(),
            scheme: Scheme::Dcf { aggregation: 1 },
            flows: vec![FlowSpec {
                path: vec![0, 1, 2, 3].into_iter().map(NodeId::new).collect(),
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(30),
            seed: 7,
            max_forwarders: 5,
            motion: MotionPlan::default(),
            route_refresh: Some(SimDuration::from_millis(10)),
            shards: None,
        }
    }

    #[test]
    fn traced_run_serialises_and_validates() {
        let (_, trace) = run_traced(&scenario());
        assert!(!trace.is_empty());
        let doc = trace_document("trace-demo", &trace);
        assert_eq!(validate_trace(&doc), Ok(trace.len()));
        // The document is clean for checked emission (no floats at all).
        let text = doc.to_json_string().expect("finite");
        assert!(text.contains("\"type\": \"forward\""), "a 4-hop line must relay");
        assert!(text.contains("\"type\": \"deliver\""));
        // Emission round-trips through the parser and still validates.
        let parsed = crate::json::parse(&text).expect("parse");
        assert_eq!(validate_trace(&parsed), Ok(trace.len()));
    }

    #[test]
    fn tracing_is_a_pure_observer() {
        let (traced, _) = run_traced(&scenario());
        assert_eq!(traced, run(&scenario()), "recording a trace must not perturb the run");
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        let (_, trace) = run_traced(&scenario());
        let doc = trace_document("trace-demo", &trace);

        let mut wrong_schema = doc;
        if let Value::Obj(pairs) = &mut wrong_schema {
            pairs[0].1 = Value::Str("wmn-trace-v0".into());
        }
        assert!(validate_trace(&wrong_schema).unwrap_err().contains("schema"));

        let no_events = Value::obj().with("schema", TRACE_SCHEMA).with("scenario", "x");
        assert!(validate_trace(&no_events).unwrap_err().contains("events"));

        let bad_event = Value::obj().with("schema", TRACE_SCHEMA).with("scenario", "x").with(
            "events",
            Value::Arr(vec![Value::obj()
                .with("at_ns", 5u64)
                .with("node", 0u64)
                .with("type", "drop")
                .with("flow", 0u64)]),
        );
        let msg = validate_trace(&bad_event).unwrap_err();
        assert!(msg.contains("reason"), "{msg}");

        let out_of_order = Value::obj().with("schema", TRACE_SCHEMA).with("scenario", "x").with(
            "events",
            Value::Arr(vec![
                Value::obj().with("at_ns", 5u64).with("node", 0u64).with("type", "tx_end"),
                Value::obj().with("at_ns", 4u64).with("node", 0u64).with("type", "tx_end"),
            ]),
        );
        assert!(validate_trace(&out_of_order).unwrap_err().contains("precedes"));
    }
}
