//! The worker pool that executes a [`RunPlan`].
//!
//! Workers are plain `std::thread` scoped threads pulling plan indices off a
//! shared atomic counter (work stealing at run granularity — the runs of a
//! grid vary in cost by an order of magnitude, so static striping would leave
//! cores idle). Each result is stored in the slot of its plan index, so the
//! returned vector is in plan order regardless of completion order and the
//! whole engine is invisible to downstream averaging.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use wmn_netsim::{run, RunResult};

use crate::plan::RunPlan;
use crate::telemetry;

/// Environment variable selecting the worker count (a positive integer).
pub const JOBS_ENV: &str = "RIPPLE_JOBS";

/// Environment variable forcing the sharded engine at a fixed shard count
/// (a positive integer) for every run of the plan. Unset respects each
/// scenario's own [`Scenario::shards`](wmn_netsim::Scenario) knob.
///
/// The override exists for the CI shard-determinism job: the same sweep
/// executed under `RIPPLE_SHARDS=1`, `=2`, and `=8` must produce
/// byte-identical reports (the sharded engine's k-invariance contract),
/// without maintaining per-shard-count spec files.
pub const SHARDS_ENV: &str = "RIPPLE_SHARDS";

/// The worker count used when [`JOBS_ENV`] is unset: the host's available
/// parallelism, falling back to 1 if it cannot be determined.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Resolves the default worker count from the environment.
///
/// Unset means [`available_jobs`]; anything set must parse as a positive
/// integer.
///
/// # Errors
///
/// Returns a descriptive message if [`JOBS_ENV`] is set to anything that is
/// not a positive integer.
pub fn jobs_from_env() -> Result<usize, String> {
    // lint:allow(no-nondeterministic-std): worker count only changes the schedule — results are slot-ordered and bit-identical for any value
    match std::env::var(JOBS_ENV) {
        Err(_) => Ok(available_jobs()),
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{JOBS_ENV} must be a positive integer worker count, got {raw:?}")),
        },
    }
}

/// Resolves the shard-count override from the environment.
///
/// Unset means no override (each scenario's own `shards` knob decides the
/// engine); anything set must parse as a positive integer.
///
/// # Errors
///
/// Returns a descriptive message if [`SHARDS_ENV`] is set to anything that
/// is not a positive integer.
pub fn shards_from_env() -> Result<Option<u32>, String> {
    // lint:allow(no-nondeterministic-std): the override only selects the engine — results are bit-identical for any shard count
    match std::env::var(SHARDS_ENV) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().parse::<u32>() {
            Ok(k) if k >= 1 => Ok(Some(k)),
            _ => Err(format!("{SHARDS_ENV} must be a positive integer shard count, got {raw:?}")),
        },
    }
}

/// Wall-clock accounting for one executed plan.
#[derive(Clone, Copy, Debug)]
pub struct ExecStats {
    /// Number of runs executed.
    pub runs: usize,
    /// Worker threads used (after clamping to the plan size).
    pub jobs: usize,
    /// Wall-clock time from plan start to last result.
    pub wall: Duration,
    /// Sum of per-run execution times across all workers. `busy / wall`
    /// approximates the achieved speed-up.
    pub busy: Duration,
}

impl ExecStats {
    /// `busy / wall`: the concurrency achieved by this execution (1.0 for a
    /// serial run, approaching `jobs` at perfect scaling). On a host with at
    /// least `jobs` free cores this equals the wall-clock speed-up; on an
    /// oversubscribed host per-run times inflate with time-slicing, so treat
    /// it as an upper bound there.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.busy.as_secs_f64() / wall
    }
}

/// Results of one executed plan: per-run results in plan order, plus timing.
#[derive(Debug)]
pub struct ExecOutcome {
    /// One result per plan entry, in plan order.
    pub results: Vec<RunResult>,
    /// Timing for the whole plan.
    pub stats: ExecStats,
}

/// A fixed-width worker pool for [`RunPlan`]s.
///
/// # Example
///
/// ```no_run
/// use wmn_exec::{Executor, RunPlan};
/// # fn plan() -> RunPlan { unimplemented!() }
/// let outcome = Executor::from_env().execute(&plan());
/// println!("{} runs in {:?}", outcome.stats.runs, outcome.stats.wall);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    jobs: usize,
    /// Plan-level shard override: `Some(k)` forces every run onto the
    /// sharded engine at `k` shards; `None` respects each scenario's knob.
    shards: Option<u32>,
}

impl Executor {
    /// An executor with exactly `jobs` workers (clamped to at least 1) and
    /// no shard override.
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1), shards: None }
    }

    /// The same executor with a plan-level shard override ([`SHARDS_ENV`]'s
    /// programmatic form). `None` clears the override.
    pub fn with_shards(self, shards: Option<u32>) -> Self {
        Executor { shards, ..self }
    }

    /// An executor with the environment-selected worker count
    /// ([`jobs_from_env`]) and shard override ([`shards_from_env`]).
    ///
    /// # Panics
    ///
    /// Panics with a clear message if [`JOBS_ENV`] or [`SHARDS_ENV`] is set
    /// to an invalid value — a misconfigured run must not silently fall
    /// back to some other parallelism or engine.
    pub fn from_env() -> Self {
        let jobs = match jobs_from_env() {
            Ok(jobs) => jobs,
            Err(msg) => panic!("{msg}"),
        };
        let shards = match shards_from_env() {
            Ok(shards) => shards,
            Err(msg) => panic!("{msg}"),
        };
        Executor::new(jobs).with_shards(shards)
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configured shard override, if any.
    pub fn shards(&self) -> Option<u32> {
        self.shards
    }

    /// Executes every run of `plan` and returns the results in plan order.
    ///
    /// Determinism contract: each run is a pure function of its scenario
    /// (seeded via [`wmn_sim::RngDirectory`]), runs share no state, and the
    /// result vector is indexed by plan position — so the output is
    /// bit-identical for any worker count, including 1. With a shard
    /// override set, every scenario additionally runs on the sharded engine
    /// at that count, which is itself bit-identical for any count ≥ 1.
    pub fn execute(&self, plan: &RunPlan) -> ExecOutcome {
        let started = Instant::now();
        let specs = plan.specs();
        let n = specs.len();
        let jobs = self.jobs.min(n).max(1);
        let run_one = |scenario: &wmn_netsim::Scenario| -> RunResult {
            match self.shards {
                None => run(scenario),
                Some(k) => {
                    let mut forced = scenario.clone();
                    forced.shards = Some(k);
                    run(&forced)
                }
            }
        };

        let busy_ns = AtomicU64::new(0);
        let mut slots: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();

        if jobs == 1 {
            for (slot, spec) in slots.iter_mut().zip(specs) {
                let t0 = Instant::now();
                *slot = Some(run_one(&spec.scenario));
                busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        } else {
            let next = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, RunResult)>> = Mutex::new(Vec::with_capacity(n));
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t0 = Instant::now();
                            let result = run_one(&specs[i].scenario);
                            busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            local.push((i, result));
                        }
                        collected.lock().expect("no worker poisons the sink").extend(local);
                    });
                }
            });
            for (i, result) in collected.into_inner().expect("workers joined") {
                slots[i] = Some(result);
            }
        }

        let results: Vec<RunResult> =
            slots.into_iter().map(|r| r.expect("every plan slot executed")).collect();
        let stats = ExecStats {
            runs: n,
            jobs,
            wall: started.elapsed(),
            busy: Duration::from_nanos(busy_ns.into_inner()),
        };
        telemetry::record(&stats);
        ExecOutcome { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_netsim::{FlowSpec, Scenario, Scheme, Workload};
    use wmn_phy::{PhyParams, Position};
    use wmn_sim::{NodeId, SimDuration};

    fn scenarios(n: usize) -> Vec<Scenario> {
        (0..n)
            .map(|i| Scenario {
                name: format!("exec-test-{i}"),
                params: PhyParams::paper_216(),
                positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
                scheme: Scheme::Dcf { aggregation: 1 },
                flows: vec![FlowSpec {
                    path: vec![NodeId::new(0), NodeId::new(1)],
                    workload: Workload::Ftp,
                }],
                duration: SimDuration::from_millis(5),
                seed: i as u64,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_serial_in_plan_order() {
        let plan = RunPlan::grid(&scenarios(5), &[1, 2], SimDuration::from_millis(5));
        let serial = Executor::new(1).execute(&plan);
        let parallel = Executor::new(4).execute(&plan);
        assert_eq!(serial.results.len(), 10);
        assert_eq!(serial.results, parallel.results);
        assert_eq!(parallel.stats.runs, 10);
        assert!(parallel.stats.jobs <= 4);
    }

    #[test]
    fn empty_plan_is_fine() {
        let outcome = Executor::new(8).execute(&RunPlan::new());
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.runs, 0);
    }

    #[test]
    fn jobs_clamp_to_at_least_one() {
        assert_eq!(Executor::new(0).jobs(), 1);
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn shard_override_forces_the_sharded_engine_and_stays_count_invariant() {
        let plan = RunPlan::grid(&scenarios(3), &[1, 2], SimDuration::from_millis(5));
        // The override must be equivalent to setting `shards` on every
        // scenario directly …
        let mut direct = scenarios(3);
        for s in &mut direct {
            s.shards = Some(1);
        }
        let direct_plan = RunPlan::grid(&direct, &[1, 2], SimDuration::from_millis(5));
        let overridden = Executor::new(2).with_shards(Some(1)).execute(&plan);
        assert_eq!(overridden.results, Executor::new(2).execute(&direct_plan).results);
        // … and k-invariant, per the sharded engine's contract.
        let two = Executor::new(2).with_shards(Some(2)).execute(&plan);
        assert_eq!(overridden.results, two.results);
        // The sharded engine consumes per-entity RNG streams, so the
        // override genuinely switched engines (≠ legacy bytes).
        let legacy = Executor::new(2).execute(&plan);
        assert_ne!(legacy.results, overridden.results);
    }

    #[test]
    fn with_shards_round_trips_and_clears() {
        let exec = Executor::new(3).with_shards(Some(8));
        assert_eq!(exec.shards(), Some(8));
        assert_eq!(exec.jobs(), 3);
        assert_eq!(exec.with_shards(None).shards(), None);
    }

    #[test]
    fn speedup_of_serial_run_is_about_one() {
        let plan = RunPlan::grid(&scenarios(2), &[1], SimDuration::from_millis(5));
        let outcome = Executor::new(1).execute(&plan);
        // busy ≈ wall when one worker does everything (scheduling overhead
        // only ever pushes the ratio below 1).
        assert!(outcome.stats.speedup() <= 1.05, "got {}", outcome.stats.speedup());
    }
}
