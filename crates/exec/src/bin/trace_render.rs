//! Offline renderer for `wmn-trace-v1` packet traces.
//!
//! Reads a trace JSON written from a [`wmn_netsim::run_traced`] timeline
//! (see [`wmn_exec::trace`]), checks it against the schema, and renders a
//! human-readable timeline plus a per-flow summary. With `--validate` it
//! only checks the schema and prints the event count — the CI smoke mode.
//!
//! ```text
//! trace_render trace.json             # validate + render the timeline
//! trace_render trace.json --validate  # schema check only
//! trace_render trace.json --summary   # per-flow summary only
//! ```

use std::process::exit;

use wmn_exec::json::{parse, Value};
use wmn_exec::validate_trace;

fn usage() -> ! {
    eprintln!("usage: trace_render <trace.json> [--validate | --summary]");
    exit(2)
}

fn get_u64(event: &Value, key: &str) -> u64 {
    event.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_str<'v>(event: &'v Value, key: &str) -> &'v str {
    event.get(key).and_then(Value::as_str).unwrap_or("?")
}

fn describe(event: &Value) -> String {
    let flow = || format!("f{}", get_u64(event, "flow"));
    match get_str(event, "type") {
        "tx" => format!(
            "tx {} {} seq {} ({} subframes, {} B)",
            get_str(event, "frame"),
            flow(),
            get_u64(event, "frame_seq"),
            get_u64(event, "subframes"),
            get_u64(event, "wire_bytes"),
        ),
        "tx_end" => "tx end".to_string(),
        "rx" => format!(
            "rx {} {} seq {} from n{}",
            get_str(event, "frame"),
            flow(),
            get_u64(event, "frame_seq"),
            get_u64(event, "from"),
        ),
        "deliver" => format!("deliver {}", flow()),
        "drop" => format!("drop {} ({})", flow(), get_str(event, "reason")),
        "forward" => format!("forward {} -> n{}", flow(), get_u64(event, "next_hop")),
        "route_change" => {
            let path: Vec<String> = event
                .get("path")
                .and_then(Value::as_arr)
                .unwrap_or(&[])
                .iter()
                .filter_map(Value::as_u64)
                .map(|n| format!("n{n}"))
                .collect();
            format!("route change {}: {}", flow(), path.join(" -> "))
        }
        other => format!("({other})"),
    }
}

fn main() {
    let mut path = None;
    let mut validate_only = false;
    let mut summary_only = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--validate" => validate_only = true,
            "--summary" => summary_only = true,
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        eprintln!("error: cannot read {path}: {err}");
        exit(1)
    });
    let doc = parse(&text).unwrap_or_else(|err| {
        eprintln!("error: {path}: {err}");
        exit(1)
    });
    let count = validate_trace(&doc).unwrap_or_else(|err| {
        eprintln!("error: {path}: {err}");
        exit(1)
    });
    let scenario = doc.get("scenario").and_then(Value::as_str).unwrap_or("?");
    if validate_only {
        println!("ok: {scenario}: {count} events");
        return;
    }

    let events = doc.get("events").and_then(Value::as_arr).unwrap_or(&[]);
    if !summary_only {
        // Buffered, error-tolerant timeline printing: traces are large and
        // routinely piped into `head`, so a closed pipe must end the
        // listing quietly rather than panic.
        use std::io::Write;
        let stdout = std::io::stdout();
        let mut out = std::io::BufWriter::new(stdout.lock());
        let _ = writeln!(out, "# Trace {scenario} — {count} events\n");
        for event in events {
            let at_us = get_u64(event, "at_ns") as f64 / 1e3;
            let line =
                format!("{at_us:>12.3} us  n{:<3} {}", get_u64(event, "node"), describe(event));
            if writeln!(out, "{line}").is_err() {
                return;
            }
        }
        let _ = writeln!(out);
        let _ = out.flush();
    }

    // Per-flow summary: deliveries, drops, forwards, and each route change.
    let mut flows: Vec<u64> = events
        .iter()
        .filter_map(|e| e.get("flow").and_then(Value::as_u64))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    flows.sort_unstable();
    println!("# Summary");
    for flow in flows {
        let of_flow = |ty: &'static str| {
            events.iter().filter(move |e| get_str(e, "type") == ty && get_u64(e, "flow") == flow)
        };
        println!(
            "flow f{flow}: {} delivered, {} dropped, {} forwards, {} route changes",
            of_flow("deliver").count(),
            of_flow("drop").count(),
            of_flow("forward").count(),
            of_flow("route_change").count(),
        );
        for change in of_flow("route_change") {
            let at_us = get_u64(change, "at_ns") as f64 / 1e3;
            println!("  {at_us:>12.3} us  {}", describe(change));
        }
    }
}
