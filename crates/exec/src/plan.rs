//! Run plans: the ordered list of independent simulations an
//! [`Executor`](crate::Executor) fans across its workers.
//!
//! A plan fixes the *result order* up front: however the runs are scheduled
//! onto threads, [`Executor::execute`](crate::Executor::execute) returns one
//! [`RunResult`](wmn_netsim::RunResult) per plan entry, in plan order. That
//! makes downstream seed-averaging bit-identical to a serial loop over the
//! same entries.

use wmn_netsim::Scenario;
use wmn_sim::SimDuration;

/// One entry of a [`RunPlan`]: a fully-specified scenario (seed and duration
/// already set) ready to hand to [`wmn_netsim::run`].
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// The scenario to execute, exactly as `wmn_netsim::run` will see it.
    pub scenario: Scenario,
}

/// An ordered collection of independent runs.
///
/// # Example
///
/// Expanding one scenario over a seed list (the common experiment shape):
///
/// ```no_run
/// use wmn_exec::RunPlan;
/// # fn scenario() -> wmn_netsim::Scenario { unimplemented!() }
/// let plan = RunPlan::grid(
///     std::slice::from_ref(&scenario()),
///     &[1, 2, 3],
///     wmn_sim::SimDuration::from_secs_f64(1.0),
/// );
/// assert_eq!(plan.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunPlan {
    specs: Vec<RunSpec>,
}

impl RunPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        RunPlan { specs: Vec::new() }
    }

    /// Appends one fully-specified scenario; returns its plan index.
    pub fn push(&mut self, scenario: Scenario) -> usize {
        self.specs.push(RunSpec { scenario });
        self.specs.len() - 1
    }

    /// Builds the (scenario × seed) grid every figure/table experiment runs:
    /// for each scenario, in order, one entry per seed (in seed order) with
    /// the scenario's `seed` and `duration` overridden.
    ///
    /// The resulting plan order — scenario-major, seed-minor — is the
    /// contract [`crate::Executor::execute`] preserves, so averaging
    /// consecutive `seeds.len()`-sized chunks reproduces a serial
    /// run-per-seed loop exactly.
    pub fn grid(scenarios: &[Scenario], seeds: &[u64], duration: SimDuration) -> Self {
        let mut plan = RunPlan::new();
        for scenario in scenarios {
            for &seed in seeds {
                let mut s = scenario.clone();
                s.seed = seed;
                s.duration = duration;
                plan.push(s);
            }
        }
        plan
    }

    /// The planned runs, in execution-result order.
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Number of planned runs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan holds no runs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_netsim::{FlowSpec, Scheme, Workload};
    use wmn_sim::NodeId;

    fn scenario(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            params: wmn_phy::PhyParams::paper_216(),
            positions: vec![wmn_phy::Position::new(0.0, 0.0), wmn_phy::Position::new(5.0, 0.0)],
            scheme: Scheme::Dcf { aggregation: 1 },
            flows: vec![FlowSpec {
                path: vec![NodeId::new(0), NodeId::new(1)],
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(1),
            seed: 0,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        }
    }

    #[test]
    fn grid_is_scenario_major_seed_minor() {
        let scenarios = [scenario("a"), scenario("b")];
        let plan = RunPlan::grid(&scenarios, &[7, 8, 9], SimDuration::from_millis(20));
        assert_eq!(plan.len(), 6);
        let seeds: Vec<u64> = plan.specs().iter().map(|s| s.scenario.seed).collect();
        assert_eq!(seeds, vec![7, 8, 9, 7, 8, 9]);
        assert_eq!(plan.specs()[0].scenario.name, "a");
        assert_eq!(plan.specs()[3].scenario.name, "b");
        assert!(plan.specs().iter().all(|s| s.scenario.duration == SimDuration::from_millis(20)));
    }

    #[test]
    fn push_returns_index() {
        let mut plan = RunPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.push(scenario("x")), 0);
        assert_eq!(plan.push(scenario("y")), 1);
        assert_eq!(plan.len(), 2);
    }
}
