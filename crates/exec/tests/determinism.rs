//! The executor's core contract, property-tested: for random small
//! scenarios, results from 1, 2, and 8 workers are **bit-identical** to a
//! plain serial `wmn_netsim::run` loop over the same seeds.
//!
//! Scenarios vary over topology size, scheme (incl. the opportunistic
//! ExOR variants), workload, seed set, and duration, so any hidden shared
//! state, scheduling leak, or result-reordering in the engine shows up as a
//! failed equality on some case.

use proptest::prelude::*;
use wmn_exec::{Executor, RunPlan};
use wmn_netsim::{run, FlowSpec, RunResult, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};

/// Builds the sampled scenario: an `n`-node line with one end-to-end flow.
fn scenario(n_nodes: usize, scheme_pick: usize, workload_pick: usize, ms: u64) -> Scenario {
    // Opportunistic schemes need interior forwarders to be meaningful;
    // sample them only on 3+-node lines.
    let scheme = match scheme_pick % if n_nodes >= 3 { 6 } else { 2 } {
        0 => Scheme::Dcf { aggregation: 1 },
        1 => Scheme::Dcf { aggregation: 16 },
        2 => Scheme::Ripple { aggregation: 1 },
        3 => Scheme::Ripple { aggregation: 16 },
        4 => Scheme::PreExor,
        _ => Scheme::McExor,
    };
    let workload = match workload_pick % 4 {
        0 => Workload::Ftp,
        1 => Workload::Web(wmn_traffic::WebModel::paper()),
        2 => Workload::Voip(wmn_traffic::VoipModel::paper()),
        _ => Workload::Cbr(wmn_traffic::CbrModel::heavy()),
    };
    Scenario {
        name: format!("det-{n_nodes}-{scheme_pick}-{workload_pick}"),
        params: PhyParams::paper_216(),
        positions: (0..n_nodes).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect(),
        scheme,
        flows: vec![FlowSpec {
            path: (0..n_nodes).map(|i| NodeId::new(i as u32)).collect(),
            workload,
        }],
        duration: SimDuration::from_millis(ms),
        seed: 0,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

/// The pre-engine ground truth: a hand-rolled serial loop over the seeds.
fn serial_baseline(scenario: &Scenario, seeds: &[u64], duration: SimDuration) -> Vec<RunResult> {
    seeds
        .iter()
        .map(|&seed| {
            let mut s = scenario.clone();
            s.seed = seed;
            s.duration = duration;
            run(&s)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any worker count reproduces the serial loop exactly, run by run.
    #[test]
    fn prop_worker_count_is_invisible(
        n_nodes in 2usize..5,
        scheme_pick in 0usize..6,
        workload_pick in 0usize..4,
        ms in 5u64..25,
        seed_base in any::<u32>(),
    ) {
        let scenario = scenario(n_nodes, scheme_pick, workload_pick, ms);
        let duration = SimDuration::from_millis(ms);
        let seeds: Vec<u64> =
            (0..3).map(|i| u64::from(seed_base).wrapping_add(i * 7919)).collect();
        let baseline = serial_baseline(&scenario, &seeds, duration);
        let plan = RunPlan::grid(std::slice::from_ref(&scenario), &seeds, duration);
        for jobs in [1usize, 2, 8] {
            let outcome = Executor::new(jobs).execute(&plan);
            prop_assert_eq!(
                &outcome.results,
                &baseline,
                "executor with {} workers diverged from the serial loop ({})",
                jobs,
                scenario.name
            );
        }
    }

    /// A mixed plan of *different* scenarios also comes back in plan order,
    /// independent of scheduling.
    #[test]
    fn prop_mixed_plan_keeps_plan_order(
        picks in proptest::collection::vec((2usize..5, 0usize..6, 0usize..4), 2..6),
        ms in 5u64..15,
    ) {
        let scenarios: Vec<Scenario> = picks
            .iter()
            .map(|&(n, s, w)| {
                let mut sc = scenario(n, s, w, ms);
                sc.seed = (n + s + w) as u64;
                sc
            })
            .collect();
        let mut plan = RunPlan::new();
        for sc in &scenarios {
            plan.push(sc.clone());
        }
        let baseline: Vec<RunResult> = scenarios.iter().map(run).collect();
        let parallel = Executor::new(8).execute(&plan);
        prop_assert_eq!(&parallel.results, &baseline);
    }

    /// The `RIPPLE_SHARDS` override composes with the worker pool: for any
    /// shard count k and any worker count, the overridden plan is
    /// bit-identical to a serial loop over the same scenarios with
    /// `shards: Some(k)` set directly — and to every other shard count.
    #[test]
    fn prop_shard_override_is_invisible_at_any_count(
        n_nodes in 3usize..5,
        scheme_pick in 0usize..6,
        workload_pick in 0usize..4,
        ms in 5u64..20,
        seed_base in any::<u32>(),
    ) {
        let scenario = scenario(n_nodes, scheme_pick, workload_pick, ms);
        let duration = SimDuration::from_millis(ms);
        let seeds: Vec<u64> =
            (0..2).map(|i| u64::from(seed_base).wrapping_add(i * 7919)).collect();
        let mut sharded = scenario.clone();
        sharded.shards = Some(1);
        let baseline = serial_baseline(&sharded, &seeds, duration);
        let plan = RunPlan::grid(std::slice::from_ref(&scenario), &seeds, duration);
        for (jobs, shards) in [(1usize, 1u32), (2, 2), (8, 8)] {
            let outcome = Executor::new(jobs).with_shards(Some(shards)).execute(&plan);
            prop_assert_eq!(
                &outcome.results,
                &baseline,
                "{} workers at {} shards diverged from the serial 1-shard loop ({})",
                jobs,
                shards,
                scenario.name
            );
        }
    }
}
