//! Workload models for the paper's evaluation:
//!
//! * long-lived TCP transfers ("persistently send traffic throughout the
//!   simulation") — [`FtpModel`];
//! * short-lived web traffic: ON periods transfer a Pareto-distributed
//!   amount (mean 80 KB, shape 1.5), OFF periods are exponential with mean
//!   one second — [`WebModel`];
//! * VoIP: a 96 kbps on-off stream, on/off periods exponential with mean
//!   1.5 s — [`VoipModel`];
//! * saturated CBR cross/hidden traffic ("sending 5 × 10⁶ packets during
//!   the simulations") — [`CbrModel`].
//!
//! These are pure distribution/parameter records: the simulation runner
//! (`wmn-netsim`) owns the clocks and feedback loops and calls the draw
//! methods with its own RNG streams, keeping every workload deterministic
//! per seed.

use wmn_sim::{SimDuration, StreamRng};

/// A long-lived TCP transfer: unlimited data from time zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct FtpModel;

/// The paper's web-traffic workload (Section IV-D).
#[derive(Clone, Copy, Debug)]
pub struct WebModel {
    /// Mean transfer size in bytes (paper: 80 KB).
    pub mean_transfer_bytes: f64,
    /// Pareto shape parameter (paper: 1.5).
    pub pareto_shape: f64,
    /// Mean OFF (think-time) duration in seconds (paper: 1 s).
    pub mean_off_seconds: f64,
    /// Segment size used to convert bytes to TCP segments.
    pub mss_bytes: u32,
}

impl WebModel {
    /// The paper's parameters.
    pub fn paper() -> Self {
        WebModel {
            mean_transfer_bytes: 80_000.0,
            pareto_shape: 1.5,
            mean_off_seconds: 1.0,
            mss_bytes: 1000,
        }
    }

    /// Draws the size of the next transfer, in whole segments (≥ 1).
    pub fn draw_transfer_segments(&self, rng: &mut StreamRng) -> u64 {
        let bytes = rng.pareto_with_mean(self.pareto_shape, self.mean_transfer_bytes);
        ((bytes / f64::from(self.mss_bytes)).ceil() as u64).max(1)
    }

    /// Draws the next OFF (reading) period.
    pub fn draw_off_period(&self, rng: &mut StreamRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.mean_off_seconds))
    }
}

/// The paper's VoIP workload (Section IV-E): "a 96 kbps on-off traffic
/// stream with on and off periods exponentially distributed with mean 1.5
/// seconds".
#[derive(Clone, Copy, Debug)]
pub struct VoipModel {
    /// Codec bitrate during ON periods, bits per second.
    pub bitrate_bps: f64,
    /// Wire size of each voice packet.
    pub packet_bytes: u32,
    /// Mean ON duration, seconds.
    pub mean_on_seconds: f64,
    /// Mean OFF duration, seconds.
    pub mean_off_seconds: f64,
}

impl VoipModel {
    /// The paper's parameters: 96 kbps, 1.5 s mean on/off. 240-byte packets
    /// give the canonical 20 ms packetisation interval.
    pub fn paper() -> Self {
        VoipModel {
            bitrate_bps: 96_000.0,
            packet_bytes: 240,
            mean_on_seconds: 1.5,
            mean_off_seconds: 1.5,
        }
    }

    /// Interval between packets during an ON period.
    pub fn packet_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(f64::from(self.packet_bytes) * 8.0 / self.bitrate_bps)
    }

    /// Draws the duration of the next ON or OFF phase.
    pub fn draw_phase(&self, on: bool, rng: &mut StreamRng) -> SimDuration {
        let mean = if on { self.mean_on_seconds } else { self.mean_off_seconds };
        SimDuration::from_secs_f64(rng.exponential(mean))
    }

    /// Pre-generates the departure times of every packet in `[0, horizon)`,
    /// alternating ON/OFF phases starting with ON.
    pub fn departure_schedule(
        &self,
        horizon: SimDuration,
        rng: &mut StreamRng,
    ) -> Vec<SimDuration> {
        let mut departures = Vec::new();
        let mut t = SimDuration::ZERO;
        let mut on = true;
        let interval = self.packet_interval();
        while t < horizon {
            let phase = self.draw_phase(on, rng);
            if on {
                let phase_end = t + phase;
                let mut next = t;
                while next < phase_end && next < horizon {
                    departures.push(next);
                    next += interval;
                }
            }
            t += phase;
            on = !on;
        }
        departures
    }
}

/// Constant-bit-rate traffic used as saturating cross / hidden-terminal
/// load. An interval shorter than the frame service time keeps the sender
/// permanently backlogged, which is how the paper's "5 × 10⁶ packets"
/// senders behave over a 10 s run.
#[derive(Clone, Copy, Debug)]
pub struct CbrModel {
    /// Wire size of each packet.
    pub packet_bytes: u32,
    /// Inter-departure interval.
    pub interval: SimDuration,
}

impl CbrModel {
    /// Creates a CBR source with the given packet size and interval.
    pub fn new(packet_bytes: u32, interval: SimDuration) -> Self {
        CbrModel { packet_bytes, interval }
    }

    /// The paper's hidden/cross traffic: effectively saturated at any PHY
    /// rate used in the evaluation (5 × 10⁶ packets over 10 s would need
    /// 400 Mbps of goodput).
    pub fn saturating() -> Self {
        CbrModel { packet_bytes: 1000, interval: SimDuration::from_micros(100) }
    }

    /// Heavy-but-not-annihilating cross/hidden load: ~27 Mbps. Enough to
    /// keep the sender backlogged at 6 Mbps PHY and to contend hard at
    /// 216 Mbps, without occupying every microsecond of airtime the way
    /// [`CbrModel::saturating`] does — which is what reproduces the paper's
    /// *gradual* throughput decline under interference.
    pub fn heavy() -> Self {
        CbrModel { packet_bytes: 1000, interval: SimDuration::from_micros(300) }
    }

    /// Offered load in Mbps.
    pub fn offered_load_mbps(&self) -> f64 {
        f64::from(self.packet_bytes) * 8.0 / self.interval.as_micros_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StreamRng {
        StreamRng::derive(21, "traffic-test")
    }

    #[test]
    fn web_transfer_sizes_have_right_mean() {
        let m = WebModel::paper();
        let mut r = rng();
        let n = 100_000;
        let total: u64 = (0..n).map(|_| m.draw_transfer_segments(&mut r)).sum();
        let mean_bytes = total as f64 * 1000.0 / n as f64;
        // Heavy-tailed: wide tolerance around 80 KB.
        assert!(
            (mean_bytes - 80_000.0).abs() / 80_000.0 < 0.3,
            "mean transfer {mean_bytes} too far from 80 KB"
        );
    }

    #[test]
    fn web_off_periods_average_one_second() {
        let m = WebModel::paper();
        let mut r = rng();
        let n = 20_000;
        let total: f64 = (0..n).map(|_| m.draw_off_period(&mut r).as_secs_f64()).sum();
        assert!((total / n as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn voip_packetisation_is_20ms() {
        let m = VoipModel::paper();
        assert_eq!(m.packet_interval(), SimDuration::from_millis(20));
    }

    #[test]
    fn voip_rate_during_on_is_96kbps() {
        let m = VoipModel::paper();
        let per_second = 1.0 / m.packet_interval().as_secs_f64();
        let bps = per_second * f64::from(m.packet_bytes) * 8.0;
        assert!((bps - 96_000.0).abs() < 1.0);
    }

    #[test]
    fn voip_schedule_respects_duty_cycle() {
        let m = VoipModel::paper();
        let mut r = rng();
        let horizon = SimDuration::from_secs_f64(200.0);
        let schedule = m.departure_schedule(horizon, &mut r);
        // 50 % duty cycle at 50 pkt/s over 200 s ≈ 5000 packets.
        let expected = 5000.0;
        let got = schedule.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.25,
            "expected ≈{expected} packets, got {got}"
        );
        // Strictly increasing and inside the horizon.
        assert!(schedule.windows(2).all(|w| w[0] < w[1]));
        assert!(schedule.iter().all(|d| *d < horizon));
    }

    #[test]
    fn saturating_cbr_exceeds_phy_service_rate() {
        let m = CbrModel::saturating();
        assert!(m.offered_load_mbps() > 50.0, "must exceed any achievable goodput");
    }
}
