//! Result accounting: throughput, summary statistics, the paper's
//! R-factor → MoS VoIP quality model, and plain-text result tables for the
//! experiment binaries.

pub mod mos;
pub mod percentile;
pub mod table;

pub use mos::{mos_from_r, r_factor, voip_mos, VoipQualityInputs};
pub use percentile::{jitter, median, p95, quantile};
pub use table::Table;

use wmn_sim::SimDuration;

/// Converts a byte count over a duration into megabits per second.
///
/// # Example
///
/// ```
/// use wmn_metrics::throughput_mbps;
/// use wmn_sim::SimDuration;
/// let mbps = throughput_mbps(1_250_000, SimDuration::from_secs_f64(1.0));
/// assert!((mbps - 10.0).abs() < 1e-9);
/// ```
pub fn throughput_mbps(bytes: u64, elapsed: SimDuration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / 1e6 / secs
}

/// Mean of a sample; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation; 0 for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_basics() {
        assert_eq!(throughput_mbps(0, SimDuration::from_secs_f64(1.0)), 0.0);
        assert_eq!(throughput_mbps(1000, SimDuration::ZERO), 0.0);
        let mbps = throughput_mbps(125_000, SimDuration::from_secs_f64(0.1));
        assert!((mbps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01);
    }
}
