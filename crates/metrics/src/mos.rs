//! The paper's VoIP quality model (Section IV-E).
//!
//! MoS is estimated from an R-factor:
//!
//! ```text
//! R = 94.2 − 0.024·d − 0.11·(d − 177.3)·H(d − 177.3) − 11 − 40·log10(1 + 10·e)
//! ```
//!
//! where `d` is the mouth-to-ear delay in milliseconds (coding + network +
//! buffering), `e` the total loss rate (network losses plus late arrivals),
//! and `H` the Heaviside step. MoS is then
//!
//! ```text
//! MoS = 1                                     if R < 0
//!     = 4.5                                   if R > 100
//!     = 1 + 0.035·R + 7e-6·R(R−60)(100−R)     otherwise
//! ```
//!
//! The paper targets a 177 ms mouth-to-ear budget of which 52 ms is the
//! wireless part, so the fixed (coding + wired + buffering) component is
//! 125 ms.

use wmn_sim::SimDuration;

/// Fixed non-wireless mouth-to-ear delay component: 177 ms target minus the
/// 52 ms wireless budget.
pub const FIXED_DELAY_MS: f64 = 125.0;

/// The paper's wireless delay budget; packets later than this count as
/// losses.
pub const WIRELESS_BUDGET: SimDuration = SimDuration::from_millis(52);

/// Inputs to the VoIP quality computation for one flow.
#[derive(Clone, Copy, Debug)]
pub struct VoipQualityInputs {
    /// Mean one-way wireless delay of on-time packets.
    pub mean_wireless_delay: SimDuration,
    /// Total loss fraction: network losses plus late (> budget) arrivals.
    pub loss_fraction: f64,
}

/// The R-factor for a mouth-to-ear delay `d_ms` (milliseconds) and loss
/// fraction `e`.
pub fn r_factor(d_ms: f64, e: f64) -> f64 {
    let h = if d_ms > 177.3 { 1.0 } else { 0.0 };
    94.2 - 0.024 * d_ms - 0.11 * (d_ms - 177.3) * h - 11.0 - 40.0 * (1.0 + 10.0 * e).log10()
}

/// Maps an R-factor to a Mean Opinion Score.
pub fn mos_from_r(r: f64) -> f64 {
    if r < 0.0 {
        1.0
    } else if r > 100.0 {
        4.5
    } else {
        1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r)
    }
}

/// End-to-end MoS for one VoIP flow: adds the fixed 125 ms component to the
/// measured wireless delay and applies the two formulas above.
pub fn voip_mos(inputs: VoipQualityInputs) -> f64 {
    let d_ms = FIXED_DELAY_MS + inputs.mean_wireless_delay.as_secs_f64() * 1e3;
    mos_from_r(r_factor(d_ms, inputs.loss_fraction.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_conditions_score_high() {
        // Zero wireless delay and loss: d = 125 ms, e = 0.
        let mos = voip_mos(VoipQualityInputs {
            mean_wireless_delay: SimDuration::ZERO,
            loss_fraction: 0.0,
        });
        assert!(mos > 4.0, "clean call should be 'fair'-to-'perfect', got {mos}");
    }

    #[test]
    fn heavy_loss_is_very_annoying() {
        // With the paper's formula, pure loss saturates the log term at
        // 40·log10(11) ≈ 41.7 dB of R-factor penalty: a 90 % loss call
        // lands in the "very annoying" band (MoS ≈ 2), and well below the
        // "fair" 4.x of a clean call.
        let mos = voip_mos(VoipQualityInputs {
            mean_wireless_delay: SimDuration::from_millis(52),
            loss_fraction: 0.9,
        });
        assert!(mos < 2.2, "a 90 % loss call must be very annoying, got {mos}");
        assert!(mos >= 1.0);
    }

    #[test]
    fn delay_penalty_kicks_in_past_177ms() {
        // Up to the 177.3 ms knee only the 0.024/ms slope applies.
        let below = r_factor(170.0, 0.0);
        let above = r_factor(185.0, 0.0);
        let slope_only = below - 0.024 * 15.0;
        assert!(above < slope_only, "the H(d−177.3) term must add penalty");
    }

    #[test]
    fn r_to_mos_reference_points() {
        assert_eq!(mos_from_r(-5.0), 1.0);
        assert_eq!(mos_from_r(101.0), 4.5);
        // R = 80 is commonly quoted as MoS ≈ 4.03.
        assert!((mos_from_r(80.0) - 4.03).abs() < 0.03);
    }

    #[test]
    fn paper_budget_constants() {
        assert_eq!(FIXED_DELAY_MS, 125.0);
        assert_eq!(WIRELESS_BUDGET, SimDuration::from_millis(52));
    }

    proptest! {
        /// MoS is always in [1, 4.5] and monotone non-increasing in loss.
        #[test]
        fn prop_mos_bounded_and_monotone(delay_ms in 0u64..60, e1 in 0.0f64..1.0, e2 in 0.0f64..1.0) {
            let (lo, hi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
            let d = SimDuration::from_millis(delay_ms);
            let m_lo = voip_mos(VoipQualityInputs { mean_wireless_delay: d, loss_fraction: lo });
            let m_hi = voip_mos(VoipQualityInputs { mean_wireless_delay: d, loss_fraction: hi });
            prop_assert!((1.0..=4.5).contains(&m_lo));
            prop_assert!((1.0..=4.5).contains(&m_hi));
            prop_assert!(m_lo + 1e-9 >= m_hi, "more loss cannot improve MoS");
        }

        /// More wireless delay never improves MoS.
        #[test]
        fn prop_mos_monotone_in_delay(d1 in 0u64..200, d2 in 0u64..200, e in 0.0f64..0.5) {
            let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            let m_lo = voip_mos(VoipQualityInputs {
                mean_wireless_delay: SimDuration::from_millis(lo), loss_fraction: e });
            let m_hi = voip_mos(VoipQualityInputs {
                mean_wireless_delay: SimDuration::from_millis(hi), loss_fraction: e });
            prop_assert!(m_lo + 1e-9 >= m_hi);
        }
    }
}
