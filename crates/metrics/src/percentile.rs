//! Percentile helpers for delay distributions (VoIP quality depends on the
//! delay *tail*, not just the mean — a p95 near the 52 ms budget means
//! imminent late-loss).

use wmn_sim::SimDuration;

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample using nearest-rank
/// interpolation. Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use wmn_metrics::percentile::quantile;
/// use wmn_sim::SimDuration;
/// let xs: Vec<SimDuration> = (1..=100).map(SimDuration::from_millis).collect();
/// assert_eq!(quantile(&xs, 0.95), Some(SimDuration::from_millis(95)));
/// ```
pub fn quantile(samples: &[SimDuration], q: f64) -> Option<SimDuration> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<SimDuration> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Median (p50) of a delay sample.
pub fn median(samples: &[SimDuration]) -> Option<SimDuration> {
    quantile(samples, 0.5)
}

/// 95th percentile of a delay sample.
pub fn p95(samples: &[SimDuration]) -> Option<SimDuration> {
    quantile(samples, 0.95)
}

/// Inter-arrival jitter estimate: mean absolute difference between
/// consecutive delays (RFC 3550 flavour, without the smoothing filter).
pub fn jitter(delays: &[SimDuration]) -> Option<SimDuration> {
    if delays.len() < 2 {
        return None;
    }
    let total: u64 = delays.windows(2).map(|w| w[1].as_nanos().abs_diff(w[0].as_nanos())).sum();
    Some(SimDuration::from_nanos(total / (delays.len() as u64 - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_sample_has_no_quantiles() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(median(&[]).is_none());
        assert!(jitter(&[]).is_none());
        assert!(jitter(&[ms(1)]).is_none());
    }

    #[test]
    fn single_element_is_every_quantile() {
        let xs = [ms(7)];
        assert_eq!(quantile(&xs, 0.0), Some(ms(7)));
        assert_eq!(quantile(&xs, 0.5), Some(ms(7)));
        assert_eq!(quantile(&xs, 1.0), Some(ms(7)));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let xs = [ms(30), ms(10), ms(20)];
        assert_eq!(median(&xs), Some(ms(20)));
        assert_eq!(quantile(&xs, 1.0), Some(ms(30)));
    }

    #[test]
    fn jitter_of_constant_stream_is_zero() {
        let xs = [ms(5), ms(5), ms(5)];
        assert_eq!(jitter(&xs), Some(SimDuration::ZERO));
    }

    #[test]
    fn jitter_of_alternating_stream() {
        let xs = [ms(10), ms(20), ms(10), ms(20)];
        assert_eq!(jitter(&xs), Some(ms(10)));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let _ = quantile(&[ms(1)], 1.5);
    }

    proptest! {
        /// Quantiles are monotone in q and bounded by the sample extremes.
        #[test]
        fn prop_quantile_monotone(
            mut xs in proptest::collection::vec(0u64..10_000, 1..50),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let samples: Vec<SimDuration> =
                xs.drain(..).map(SimDuration::from_millis).collect();
            let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
            let a = quantile(&samples, lo).unwrap();
            let b = quantile(&samples, hi).unwrap();
            prop_assert!(a <= b);
            let min = *samples.iter().min().unwrap();
            let max = *samples.iter().max().unwrap();
            prop_assert!(a >= min && b <= max);
        }
    }
}
