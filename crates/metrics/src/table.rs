//! Plain-text result tables: each experiment binary prints the rows/series
//! the corresponding paper table or figure reports.

use std::fmt;

/// A labelled result table rendered in GitHub-flavoured markdown.
///
/// # Example
///
/// ```
/// use wmn_metrics::Table;
/// let mut t = Table::new("Fig. 3(a)", vec!["scheme", "flow 1", "flows 1+2"]);
/// t.add_row(vec!["RIPPLE-16".into(), "21.4".into(), "18.9".into()]);
/// let s = t.to_string();
/// assert!(s.contains("RIPPLE-16"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    /// Convenience: appends a row of a label followed by formatted numbers.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut row = vec![label.into()];
        row.extend(values.iter().map(|v| format!("{v:.2}")));
        self.add_row(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers, in display order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order (used by JSON report emission).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor used by experiment assertions.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "### {}", self.title)?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", vec!["a", "b"]);
        t.add_row(vec!["x".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.starts_with("### Demo"));
        assert!(s.contains("| x"));
        assert!(s.contains("|---"));
    }

    #[test]
    fn numeric_rows_format_two_decimals() {
        let mut t = Table::new("N", vec!["scheme", "v"]);
        t.add_numeric_row("D", &[6.7004]);
        assert_eq!(t.cell(0, 1), Some("6.70"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("T", vec!["only one"]);
        t.add_row(vec!["a".into(), "b".into()]);
    }
}
