//! [`SweepSpec`]: a cartesian grid of [`ScenarioSpec`]s plus the run-seed
//! axis, expanded for the `wmn_exec` engine.
//!
//! A sweep is the generated-scenario analogue of the figure modules'
//! hand-written grids: every combination of topology recipe × traffic mix ×
//! scheme × topology seed becomes one scenario, each run once per *run
//! seed* and seed-averaged downstream. Expansion order is fixed
//! (topology-major, then mix, scheme, topology seed) so plan order — and
//! therefore every report built from it — is deterministic.

use wmn_netsim::{Scenario, Scheme};

use crate::json::Value;
use crate::mix::{PairPolicy, TrafficMix};
use crate::mobility::MobilitySpec;
use crate::spec::{
    req_str, req_u64, req_u64_list, req_usize, scheme_from_name, scheme_name, PhyPreset,
    ScenarioSpec,
};
use crate::topo::TopologySpec;

/// A grid of scenario axes plus shared run settings.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (report file stem and scenario-name prefix).
    pub name: String,
    /// Topology recipes to sweep over.
    pub topologies: Vec<TopologySpec>,
    /// Traffic mixes to sweep over.
    pub mixes: Vec<TrafficMix>,
    /// Forwarding schemes to sweep over.
    pub schemes: Vec<Scheme>,
    /// Seeds for topology generation / endpoint draws: each adds one
    /// placement variant per (topology, mix, scheme) cell.
    pub topo_seeds: Vec<u64>,
    /// Seeds each scenario is run under (and averaged over) by the engine.
    pub run_seeds: Vec<u64>,
    /// PHY preset shared by the whole sweep.
    pub phy: PhyPreset,
    /// Optional bit-error-rate override.
    pub ber: Option<f64>,
    /// Simulated duration per run, milliseconds.
    pub duration_ms: u64,
    /// Cap on forwarders per opportunistic list.
    pub max_forwarders: usize,
    /// Mobility recipes to sweep over (the innermost axis). `[Static]` —
    /// the default — reproduces the pre-mobility grid byte for byte.
    pub mobilities: Vec<MobilitySpec>,
    /// Live min-ETX route-refresh period shared by every cell,
    /// milliseconds. `None` — the default — keeps routes frozen, which
    /// reproduces the pre-refresh grid byte for byte.
    pub route_refresh_ms: Option<u64>,
    /// Shard count shared by every cell. `None` — the default — runs each
    /// cell on the legacy single-loop engine (baseline bytes); `Some(k)`
    /// runs the conservative sharded engine, whose reports are
    /// bit-identical for every `k >= 1`.
    pub shards: Option<u32>,
}

impl SweepSpec {
    /// The fixed small sweep CI runs on every push (and the determinism
    /// suite replays at two worker counts): 2 topology recipes × 2 mixes ×
    /// 2 schemes × 2 topology seeds × 2 run seeds = 32 runs of 200 ms each.
    pub fn ci_quick() -> Self {
        SweepSpec {
            name: "ci-quick".into(),
            topologies: vec![
                TopologySpec::RandomGeometric { nodes: 12, side_m: 30.0 },
                TopologySpec::Grid { cols: 4, rows: 3, spacing_m: 5.0 },
            ],
            mixes: vec![
                TrafficMix { ftp: 2, web: 1, voip: 1, cbr: 0, pairing: PairPolicy::Random },
                TrafficMix { ftp: 1, web: 0, voip: 2, cbr: 1, pairing: PairPolicy::Gateway },
            ],
            schemes: vec![Scheme::Dcf { aggregation: 1 }, Scheme::Ripple { aggregation: 16 }],
            topo_seeds: vec![1, 2],
            run_seeds: vec![1, 2],
            phy: PhyPreset::Mbps216,
            ber: None,
            duration_ms: 200,
            max_forwarders: 5,
            mobilities: vec![MobilitySpec::Static],
            route_refresh_ms: None,
            shards: None,
        }
    }

    /// The mobility companion grid CI's scenario-matrix job runs: one
    /// topology × one mix × {DCF, RIPPLE-16} × {static, drift, waypoint}
    /// × 2 run seeds = 12 runs. Small on purpose — the point is that
    /// moving-node scenarios exercise the whole engine (expansion,
    /// parallel execution, deterministic reporting) on every push.
    pub fn ci_mobility() -> Self {
        SweepSpec {
            name: "ci-mobility".into(),
            topologies: vec![TopologySpec::Grid { cols: 4, rows: 3, spacing_m: 5.0 }],
            mixes: vec![TrafficMix {
                ftp: 1,
                web: 0,
                voip: 1,
                cbr: 0,
                pairing: PairPolicy::FarPairs,
            }],
            schemes: vec![Scheme::Dcf { aggregation: 1 }, Scheme::Ripple { aggregation: 16 }],
            topo_seeds: vec![1],
            run_seeds: vec![1, 2],
            phy: PhyPreset::Mbps216,
            ber: None,
            duration_ms: 200,
            max_forwarders: 5,
            mobilities: vec![
                MobilitySpec::Static,
                MobilitySpec::Drift { max_speed_mps: 2.0 },
                MobilitySpec::Waypoint { speed_mps: 2.0, legs: 3 },
            ],
            route_refresh_ms: None,
            shards: None,
        }
    }

    /// The [`SweepSpec::ci_mobility`] grid with live routing switched on:
    /// every cell refreshes its min-ETX routes every 50 ms. CI runs it
    /// alongside the frozen-route grid, so the refresh pass is exercised
    /// (and its 1-vs-N-worker determinism pinned) on every push.
    pub fn ci_mobility_refresh() -> Self {
        SweepSpec {
            name: "ci-mobility-refresh".into(),
            route_refresh_ms: Some(50),
            shards: None,
            ..SweepSpec::ci_mobility()
        }
    }

    /// Scenarios in the grid (before the run-seed axis).
    pub fn scenario_count(&self) -> usize {
        self.topologies.len()
            * self.mixes.len()
            * self.schemes.len()
            * self.topo_seeds.len()
            * self.mobilities.len()
    }

    /// Total runs the engine will execute: scenarios × run seeds.
    pub fn run_count(&self) -> usize {
        self.scenario_count() * self.run_seeds.len()
    }

    /// Expands the grid into one [`ScenarioSpec`] per cell, in the fixed
    /// topology-major order (mobility is the innermost axis). Names are
    /// `<sweep>-<topology>-<mix>-<scheme>-t<topo_seed>`, suffixed with
    /// `-m<mobility>` only for non-static cells — so a static-only sweep's
    /// names (and its committed baseline) are untouched by the axis.
    pub fn scenario_specs(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(self.scenario_count());
        for topology in &self.topologies {
            for mix in &self.mixes {
                for &scheme in &self.schemes {
                    for &topo_seed in &self.topo_seeds {
                        for &mobility in &self.mobilities {
                            let mut name = format!(
                                "{}-{}-{}-{}-t{topo_seed}",
                                self.name,
                                topology.slug(),
                                mix.slug(),
                                scheme_name(scheme),
                            );
                            if mobility != MobilitySpec::Static {
                                name.push_str(&format!("-m{}", mobility.slug()));
                            }
                            specs.push(ScenarioSpec {
                                name,
                                topology: topology.clone(),
                                mix: *mix,
                                scheme,
                                phy: self.phy,
                                ber: self.ber,
                                duration_ms: self.duration_ms,
                                seed: topo_seed,
                                max_forwarders: self.max_forwarders,
                                mobility,
                                route_refresh_ms: self.route_refresh_ms,
                                shards: self.shards,
                            });
                        }
                    }
                }
            }
        }
        specs
    }

    /// Materialises every cell into a validated [`Scenario`], ready for
    /// `wmn_exec::RunPlan::grid` / `wmn_experiments::common::run_grid` with
    /// [`SweepSpec::run_seeds`] as the seed axis.
    ///
    /// # Errors
    ///
    /// Fails on structurally empty sweeps (any empty axis), on duplicate
    /// cell names (e.g. the same recipe listed twice on an axis — report
    /// rows are keyed by name, so collisions would be indistinguishable),
    /// or on the first cell whose materialisation fails, with the cell
    /// named.
    pub fn expand(&self) -> Result<Vec<Scenario>, String> {
        if self.scenario_count() == 0 || self.run_seeds.is_empty() {
            return Err(format!(
                "sweep {:?} is empty: every axis (topologies, mixes, schemes, topo_seeds, \
                 mobilities, run_seeds) needs at least one entry",
                self.name
            ));
        }
        let specs = self.scenario_specs();
        let mut seen = std::collections::HashSet::new();
        for spec in &specs {
            if !seen.insert(spec.name.as_str()) {
                return Err(format!(
                    "sweep {:?}: duplicate cell name {:?} — two axis entries expand to the \
                     same cell",
                    self.name, spec.name
                ));
            }
        }
        specs.iter().map(ScenarioSpec::materialise).collect()
    }

    /// Serialises the sweep as a JSON object (the on-disk format
    /// `scenario_sweep --spec` reads).
    pub fn to_json(&self) -> Value {
        let mut doc = Value::obj()
            .with("name", self.name.as_str())
            .with(
                "topologies",
                Value::Arr(self.topologies.iter().map(TopologySpec::to_json).collect()),
            )
            .with("mixes", Value::Arr(self.mixes.iter().map(TrafficMix::to_json).collect()))
            .with(
                "schemes",
                Value::Arr(self.schemes.iter().map(|&s| Value::from(scheme_name(s))).collect()),
            )
            .with("topo_seeds", self.topo_seeds.clone())
            .with("run_seeds", self.run_seeds.clone())
            .with("phy", self.phy.name());
        if let Some(ber) = self.ber {
            doc = doc.with("ber", ber);
        }
        // Like the scenario spec, an all-static mobility axis stays
        // implicit so pre-mobility sweep files and the committed baseline's
        // spec echo remain byte-identical.
        if self.mobilities != [MobilitySpec::Static] {
            doc = doc.with(
                "mobilities",
                Value::Arr(self.mobilities.iter().map(|m| m.to_json()).collect()),
            );
        }
        // Same omit-when-off rule for the refresh knob.
        if let Some(ms) = self.route_refresh_ms {
            doc = doc.with("route_refresh_ms", ms);
        }
        // And for the shard knob (legacy engine stays implicit).
        if let Some(shards) = self.shards {
            doc = doc.with("shards", u64::from(shards));
        }
        doc.with("duration_ms", self.duration_ms).with("max_forwarders", self.max_forwarders)
    }

    /// Decodes a sweep from the [`SweepSpec::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or invalid field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let arr = |key: &str| -> Result<&[Value], String> {
            value
                .get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("sweep: missing or non-array \"{key}\""))
        };
        Ok(SweepSpec {
            name: req_str(value, "name", "sweep")?.to_string(),
            topologies: arr("topologies")?
                .iter()
                .map(TopologySpec::from_json)
                .collect::<Result<_, _>>()?,
            mixes: arr("mixes")?.iter().map(TrafficMix::from_json).collect::<Result<_, _>>()?,
            schemes: arr("schemes")?
                .iter()
                .map(|v| {
                    scheme_from_name(
                        v.as_str().ok_or("sweep: \"schemes\" entries must be strings")?,
                    )
                })
                .collect::<Result<_, _>>()?,
            topo_seeds: req_u64_list(value, "topo_seeds", "sweep")?,
            run_seeds: req_u64_list(value, "run_seeds", "sweep")?,
            phy: PhyPreset::from_name(req_str(value, "phy", "sweep")?)?,
            ber: match value.get("ber") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("sweep: \"ber\" must be a number")?),
            },
            duration_ms: req_u64(value, "duration_ms", "sweep")?,
            max_forwarders: req_usize(value, "max_forwarders", "sweep")?,
            mobilities: match value.get("mobilities") {
                None | Some(Value::Null) => vec![MobilitySpec::Static],
                Some(v) => v
                    .as_arr()
                    .ok_or("sweep: \"mobilities\" must be an array")?
                    .iter()
                    .map(MobilitySpec::from_json)
                    .collect::<Result<_, _>>()?,
            },
            route_refresh_ms: match value.get("route_refresh_ms") {
                None | Some(Value::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or("sweep: \"route_refresh_ms\" must be an integer")?)
                }
            },
            shards: match value.get("shards") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|k| u32::try_from(k).ok())
                        .filter(|&k| k > 0)
                        .ok_or("sweep: \"shards\" must be a positive integer")?,
                ),
            },
        })
    }

    /// Parses a sweep from JSON text.
    ///
    /// # Errors
    ///
    /// Returns either the JSON syntax error or the first schema violation.
    pub fn parse(text: &str) -> Result<Self, String> {
        SweepSpec::from_json(&crate::json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ci_quick_is_a_32_run_grid() {
        let sweep = SweepSpec::ci_quick();
        assert_eq!(sweep.scenario_count(), 16);
        assert_eq!(sweep.run_count(), 32);
    }

    #[test]
    fn scenario_names_are_unique_and_prefixed() {
        let sweep = SweepSpec::ci_quick();
        let specs = sweep.scenario_specs();
        assert_eq!(specs.len(), 16);
        let names: HashSet<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), specs.len(), "names must be unique");
        assert!(names.iter().all(|n| n.starts_with("ci-quick-")));
    }

    #[test]
    fn expand_materialises_every_cell() {
        let mut sweep = SweepSpec::ci_quick();
        // Keep the test light: one mix, one scheme, one seed each.
        sweep.mixes.truncate(1);
        sweep.schemes.truncate(1);
        sweep.topo_seeds.truncate(1);
        let scenarios = sweep.expand().unwrap();
        assert_eq!(scenarios.len(), 2);
        for s in &scenarios {
            assert_eq!(s.validate(), Ok(()));
            assert_eq!(s.flows.len(), 4);
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        let mut sweep = SweepSpec::ci_quick();
        sweep.schemes.clear();
        let msg = sweep.expand().unwrap_err();
        assert!(msg.contains("empty"), "{msg}");
        let mut no_runs = SweepSpec::ci_quick();
        no_runs.run_seeds.clear();
        assert!(no_runs.expand().is_err());
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        // The same mobility recipe twice expands to two cells with one
        // name; report rows are keyed by name, so this must fail loudly.
        let mut sweep = SweepSpec::ci_mobility();
        sweep.mobilities.push(sweep.mobilities[1]);
        let msg = sweep.expand().unwrap_err();
        assert!(msg.contains("duplicate cell name"), "{msg}");
    }

    #[test]
    fn json_round_trip() {
        let sweep = SweepSpec::ci_quick();
        let text = sweep.to_json().to_string();
        assert_eq!(SweepSpec::parse(&text).unwrap(), sweep);
        let with_ber = SweepSpec { ber: Some(1e-6), ..SweepSpec::ci_quick() };
        assert_eq!(SweepSpec::parse(&with_ber.to_json().to_string()).unwrap(), with_ber);
        assert!(SweepSpec::parse("{}").is_err());
    }

    #[test]
    fn static_sweeps_serialise_without_a_mobility_axis() {
        let text = SweepSpec::ci_quick().to_json().to_string();
        assert!(!text.contains("mobilities"), "baseline spec echo must stay byte-compatible");
    }

    #[test]
    fn mobility_axis_multiplies_the_grid_and_suffixes_names() {
        let sweep = SweepSpec::ci_mobility();
        assert_eq!(sweep.scenario_count(), 6, "2 schemes x 3 mobility recipes");
        assert_eq!(sweep.run_count(), 12);
        let specs = sweep.scenario_specs();
        let static_cells = specs.iter().filter(|s| s.mobility == MobilitySpec::Static).count();
        assert_eq!(static_cells, 2);
        for spec in &specs {
            if spec.mobility == MobilitySpec::Static {
                assert!(
                    spec.name.ends_with("-t1"),
                    "static names keep the legacy shape: {}",
                    spec.name
                );
            } else {
                assert!(
                    spec.name.contains("-t1-m"),
                    "mobile names carry the recipe: {}",
                    spec.name
                );
            }
        }
        let names: HashSet<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), specs.len(), "names must stay unique across the axis");
        // The JSON round-trip covers the axis.
        assert_eq!(SweepSpec::parse(&sweep.to_json().to_string()).unwrap(), sweep);
    }

    #[test]
    fn ci_mobility_refresh_mirrors_the_mobility_grid_with_live_routing() {
        let sweep = SweepSpec::ci_mobility_refresh();
        assert_eq!(sweep.run_count(), SweepSpec::ci_mobility().run_count());
        assert_eq!(sweep.route_refresh_ms, Some(50));
        let scenarios = sweep.expand().unwrap();
        assert!(
            scenarios.iter().all(|s| s.route_refresh.is_some()),
            "every cell must carry the refresh interval"
        );
        assert!(scenarios.iter().all(|s| s.name.starts_with("ci-mobility-refresh-")));
        // The knob round-trips through the on-disk format…
        let text = sweep.to_json().to_string();
        assert!(text.contains("\"route_refresh_ms\": 50"), "{text}");
        assert_eq!(SweepSpec::parse(&text).unwrap(), sweep);
        // …and stays implicit for refresh-off sweeps (baseline byte-compat).
        assert!(!SweepSpec::ci_quick().to_json().to_string().contains("route_refresh"));
    }

    #[test]
    fn shard_knob_round_trips_and_reaches_every_cell() {
        let legacy_text = SweepSpec::ci_quick().to_json().to_string();
        assert!(
            !legacy_text.contains("shards"),
            "legacy-engine sweeps must serialise without the key (baseline byte-compat)"
        );
        let sharded = SweepSpec { shards: Some(2), ..SweepSpec::ci_quick() };
        let text = sharded.to_json().to_string();
        assert!(text.contains("\"shards\": 2"), "{text}");
        assert_eq!(SweepSpec::parse(&text).unwrap(), sharded);
        assert!(sharded.scenario_specs().iter().all(|s| s.shards == Some(2)));
        assert!(
            sharded.expand().unwrap().iter().all(|s| s.shards == Some(2)),
            "the knob must reach every materialised cell"
        );
        let zero = text.replace("\"shards\": 2", "\"shards\": 0");
        let msg = SweepSpec::parse(&zero).unwrap_err();
        assert!(msg.contains("positive"), "{msg}");
    }

    #[test]
    fn ci_mobility_expands_into_runnable_scenarios() {
        let scenarios = SweepSpec::ci_mobility().expand().unwrap();
        assert_eq!(scenarios.len(), 6);
        assert!(scenarios.iter().any(|s| !s.motion.is_static()), "mobile cells exist");
        assert!(scenarios.iter().any(|s| s.motion.is_static()), "static control cells exist");
        for s in &scenarios {
            assert_eq!(s.validate(), Ok(()), "{}", s.name);
        }
    }
}
