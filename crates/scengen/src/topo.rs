//! Seeded procedural topology generators.
//!
//! Each [`TopologySpec`] is a small parameter record that deterministically
//! expands into a [`wmn_topology::Topology`] for a given seed: all
//! randomness comes from [`StreamRng`] streams derived from
//! `(seed, "scengen/…")` labels, so the same spec and seed always place the
//! same stations, on any host and in any worker.
//!
//! The generated placements obey the NodeId contract of `wmn_topology`
//! (dense ids, node `i` at `positions[i]`) by construction, and the two
//! stochastic families ([`TopologySpec::RandomGeometric`],
//! [`TopologySpec::Campus`]) regenerate deterministically until the
//! placement is radio-connected, so every emitted topology can actually
//! route traffic.

use wmn_phy::{PhyParams, Position};
use wmn_routing::LinkGraph;
use wmn_sim::{NodeId, StreamRng};
use wmn_topology::Topology;

use crate::json::Value;

/// Attempts the stochastic generators make before giving up on producing a
/// connected placement. Each attempt derives a fresh stream, so the loop is
/// deterministic per `(spec, seed)`.
const CONNECT_ATTEMPTS: usize = 64;

/// A procedural topology family plus its knobs.
///
/// The four families cover the structural regimes the paper's hand-placed
/// topologies sample: uniform random meshes (density/area knobs), regular
/// grids, clustered "campus" deployments (dense islands, sparse bridges),
/// and noisy line chains.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// `nodes` stations uniform in a `side_m × side_m` square, regenerated
    /// until radio-connected.
    RandomGeometric {
        /// Station count.
        nodes: usize,
        /// Side of the square deployment area, metres.
        side_m: f64,
    },
    /// A `cols × rows` lattice with `spacing_m` metres between neighbours.
    Grid {
        /// Stations per row.
        cols: usize,
        /// Number of rows.
        rows: usize,
        /// Lattice constant, metres.
        spacing_m: f64,
    },
    /// `clusters` cluster centres uniform in a `side_m × side_m` square,
    /// each with `nodes_per_cluster` stations normally scattered
    /// (`cluster_radius_m` standard deviation) around it; regenerated until
    /// radio-connected.
    Campus {
        /// Number of clusters ("buildings").
        clusters: usize,
        /// Stations per cluster.
        nodes_per_cluster: usize,
        /// Standard deviation of the in-cluster scatter, metres.
        cluster_radius_m: f64,
        /// Side of the campus square, metres.
        side_m: f64,
    },
    /// A line of `nodes` stations `spacing_m` apart, each perturbed by a
    /// normal jitter with standard deviation `jitter_m` in both axes.
    PerturbedLine {
        /// Station count.
        nodes: usize,
        /// Nominal spacing along the line, metres.
        spacing_m: f64,
        /// Jitter standard deviation, metres.
        jitter_m: f64,
    },
}

impl TopologySpec {
    /// The family name used in JSON specs and generated scenario names.
    pub fn kind(&self) -> &'static str {
        match self {
            TopologySpec::RandomGeometric { .. } => "random-geometric",
            TopologySpec::Grid { .. } => "grid",
            TopologySpec::Campus { .. } => "campus",
            TopologySpec::PerturbedLine { .. } => "perturbed-line",
        }
    }

    /// Station count the spec will generate.
    pub fn node_count(&self) -> usize {
        match *self {
            TopologySpec::RandomGeometric { nodes, .. } => nodes,
            TopologySpec::Grid { cols, rows, .. } => cols * rows,
            TopologySpec::Campus { clusters, nodes_per_cluster, .. } => {
                clusters * nodes_per_cluster
            }
            TopologySpec::PerturbedLine { nodes, .. } => nodes,
        }
    }

    /// A short id-friendly slug, e.g. `rgg12`, `grid4x3`, `campus3x6`,
    /// `line6`.
    pub fn slug(&self) -> String {
        match *self {
            TopologySpec::RandomGeometric { nodes, .. } => format!("rgg{nodes}"),
            TopologySpec::Grid { cols, rows, .. } => format!("grid{cols}x{rows}"),
            TopologySpec::Campus { clusters, nodes_per_cluster, .. } => {
                format!("campus{clusters}x{nodes_per_cluster}")
            }
            TopologySpec::PerturbedLine { nodes, .. } => format!("line{nodes}"),
        }
    }

    /// Basic sanity of the knobs (positive sizes, at least two stations).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob.
    pub fn check(&self) -> Result<(), String> {
        if self.node_count() < 2 {
            return Err(format!("{}: needs at least two stations", self.kind()));
        }
        let positive = |value: f64, what: &str| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(format!("{}: {what} must be positive, got {value}", self.kind()))
            }
        };
        match *self {
            TopologySpec::RandomGeometric { side_m, .. } => positive(side_m, "side_m"),
            TopologySpec::Grid { spacing_m, .. } => positive(spacing_m, "spacing_m"),
            TopologySpec::Campus { cluster_radius_m, side_m, .. } => {
                positive(cluster_radius_m, "cluster_radius_m")?;
                positive(side_m, "side_m")
            }
            TopologySpec::PerturbedLine { spacing_m, jitter_m, .. } => {
                positive(spacing_m, "spacing_m")?;
                if jitter_m.is_finite() && jitter_m >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("perturbed-line: jitter_m must be >= 0, got {jitter_m}"))
                }
            }
        }
    }

    /// Generates the placement for `seed`. Deterministic: the same spec and
    /// seed yield byte-identical positions.
    ///
    /// # Panics
    ///
    /// Panics if the knobs are invalid ([`TopologySpec::check`]) or if a
    /// stochastic family cannot reach a connected placement within its
    /// attempt budget — both are spec bugs (density far below the
    /// connectivity threshold), not runtime conditions.
    pub fn generate(&self, seed: u64) -> Topology {
        if let Err(msg) = self.check() {
            panic!("invalid topology spec: {msg}");
        }
        let name = format!("{}-s{seed}", self.slug());
        match *self {
            TopologySpec::Grid { cols, rows, spacing_m } => {
                let positions = (0..rows)
                    .flat_map(|r| {
                        (0..cols)
                            .map(move |c| Position::new(c as f64 * spacing_m, r as f64 * spacing_m))
                    })
                    .collect();
                Topology::new(name, positions)
            }
            TopologySpec::PerturbedLine { nodes, spacing_m, jitter_m } => {
                let mut rng = StreamRng::derive(seed, "scengen/line");
                let positions = (0..nodes)
                    .map(|i| {
                        Position::new(
                            i as f64 * spacing_m + jitter_m * rng.standard_normal(),
                            jitter_m * rng.standard_normal(),
                        )
                    })
                    .collect();
                Topology::new(name, positions)
            }
            TopologySpec::RandomGeometric { nodes, side_m } => {
                let positions = connected_placement(seed, "scengen/rgg", self, |rng| {
                    (0..nodes)
                        .map(|_| Position::new(rng.uniform() * side_m, rng.uniform() * side_m))
                        .collect()
                });
                Topology::new(name, positions)
            }
            TopologySpec::Campus { clusters, nodes_per_cluster, cluster_radius_m, side_m } => {
                let positions = connected_placement(seed, "scengen/campus", self, |rng| {
                    let mut positions = Vec::with_capacity(clusters * nodes_per_cluster);
                    for _ in 0..clusters {
                        let cx = rng.uniform() * side_m;
                        let cy = rng.uniform() * side_m;
                        for _ in 0..nodes_per_cluster {
                            positions.push(Position::new(
                                cx + cluster_radius_m * rng.standard_normal(),
                                cy + cluster_radius_m * rng.standard_normal(),
                            ));
                        }
                    }
                    positions
                });
                Topology::new(name, positions)
            }
        }
    }

    /// Serialises the spec as a JSON object (`kind` plus the family knobs).
    pub fn to_json(&self) -> Value {
        let obj = Value::obj().with("kind", self.kind());
        match *self {
            TopologySpec::RandomGeometric { nodes, side_m } => {
                obj.with("nodes", nodes).with("side_m", side_m)
            }
            TopologySpec::Grid { cols, rows, spacing_m } => {
                obj.with("cols", cols).with("rows", rows).with("spacing_m", spacing_m)
            }
            TopologySpec::Campus { clusters, nodes_per_cluster, cluster_radius_m, side_m } => obj
                .with("clusters", clusters)
                .with("nodes_per_cluster", nodes_per_cluster)
                .with("cluster_radius_m", cluster_radius_m)
                .with("side_m", side_m),
            TopologySpec::PerturbedLine { nodes, spacing_m, jitter_m } => {
                obj.with("nodes", nodes).with("spacing_m", spacing_m).with("jitter_m", jitter_m)
            }
        }
    }

    /// Decodes a spec from the [`TopologySpec::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/invalid field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let kind = crate::spec::req_str(value, "kind", "topology")?;
        let spec = match kind {
            "random-geometric" => TopologySpec::RandomGeometric {
                nodes: crate::spec::req_usize(value, "nodes", "topology")?,
                side_m: crate::spec::req_f64(value, "side_m", "topology")?,
            },
            "grid" => TopologySpec::Grid {
                cols: crate::spec::req_usize(value, "cols", "topology")?,
                rows: crate::spec::req_usize(value, "rows", "topology")?,
                spacing_m: crate::spec::req_f64(value, "spacing_m", "topology")?,
            },
            "campus" => TopologySpec::Campus {
                clusters: crate::spec::req_usize(value, "clusters", "topology")?,
                nodes_per_cluster: crate::spec::req_usize(value, "nodes_per_cluster", "topology")?,
                cluster_radius_m: crate::spec::req_f64(value, "cluster_radius_m", "topology")?,
                side_m: crate::spec::req_f64(value, "side_m", "topology")?,
            },
            "perturbed-line" => TopologySpec::PerturbedLine {
                nodes: crate::spec::req_usize(value, "nodes", "topology")?,
                spacing_m: crate::spec::req_f64(value, "spacing_m", "topology")?,
                jitter_m: crate::spec::req_f64(value, "jitter_m", "topology")?,
            },
            other => {
                return Err(format!(
                    "topology kind must be one of \"random-geometric\", \"grid\", \"campus\", \
                     \"perturbed-line\", got {other:?}"
                ))
            }
        };
        spec.check()?;
        Ok(spec)
    }
}

/// Runs `place` with per-attempt RNG streams until the placement is
/// radio-connected (see [`is_connected`]). Deterministic per `(seed, label)`.
fn connected_placement(
    seed: u64,
    label: &str,
    spec: &TopologySpec,
    mut place: impl FnMut(&mut StreamRng) -> Vec<Position>,
) -> Vec<Position> {
    for attempt in 0..CONNECT_ATTEMPTS {
        // lint:allow(rng-label-registry): label is one of this module's own registered `scengen/…` generator names
        let mut rng = StreamRng::derive(seed, &format!("{label}/attempt{attempt}"));
        let positions = place(&mut rng);
        if is_connected(&positions) {
            return positions;
        }
    }
    panic!(
        "topology spec {spec:?} produced no connected placement in {CONNECT_ATTEMPTS} attempts \
         (seed {seed}) — raise the density (more nodes or a smaller area)"
    );
}

/// Whether every station can reach every other over usable links (finite
/// ETX in both directions under the Table I shadowing model — connectivity
/// is a property of the placement geometry, so the 216 Mbps preset's link
/// model is used regardless of the PHY rate a scenario later picks).
pub fn is_connected(positions: &[Position]) -> bool {
    let n = positions.len();
    if n == 0 {
        return false;
    }
    let graph = LinkGraph::from_placement(&PhyParams::paper_216(), positions);
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut reached = 1;
    while let Some(u) = stack.pop() {
        for (v, v_seen) in seen.iter_mut().enumerate() {
            if !*v_seen && graph.link_etx(NodeId::new(u as u32), NodeId::new(v as u32)).is_finite()
            {
                *v_seen = true;
                reached += 1;
                stack.push(v);
            }
        }
    }
    reached == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_places_a_lattice() {
        let spec = TopologySpec::Grid { cols: 4, rows: 3, spacing_m: 5.0 };
        let t = spec.generate(1);
        assert_eq!(t.node_count(), 12);
        assert_eq!(t.name, "grid4x3-s1");
        // Node i sits at (col*5, row*5) — dense ids, row-major.
        assert!((t.distance(NodeId::new(0), NodeId::new(1)) - 5.0).abs() < 1e-12);
        assert!((t.distance(NodeId::new(0), NodeId::new(4)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for spec in [
            TopologySpec::RandomGeometric { nodes: 10, side_m: 25.0 },
            TopologySpec::Campus {
                clusters: 2,
                nodes_per_cluster: 4,
                cluster_radius_m: 4.0,
                side_m: 20.0,
            },
            TopologySpec::PerturbedLine { nodes: 5, spacing_m: 5.0, jitter_m: 1.0 },
        ] {
            let a = spec.generate(7);
            let b = spec.generate(7);
            assert_eq!(a.positions, b.positions, "{spec:?} must be deterministic");
            let c = spec.generate(8);
            assert_ne!(a.positions, c.positions, "{spec:?} must vary with the seed");
        }
    }

    #[test]
    fn stochastic_families_come_out_connected() {
        let rgg = TopologySpec::RandomGeometric { nodes: 12, side_m: 30.0 };
        let campus = TopologySpec::Campus {
            clusters: 3,
            nodes_per_cluster: 4,
            cluster_radius_m: 5.0,
            side_m: 30.0,
        };
        for seed in 0..8 {
            assert!(is_connected(&rgg.generate(seed).positions), "rgg seed {seed}");
            assert!(is_connected(&campus.generate(seed).positions), "campus seed {seed}");
        }
    }

    #[test]
    fn check_rejects_bad_knobs() {
        assert!(TopologySpec::RandomGeometric { nodes: 1, side_m: 10.0 }.check().is_err());
        assert!(TopologySpec::Grid { cols: 3, rows: 2, spacing_m: 0.0 }.check().is_err());
        assert!(TopologySpec::PerturbedLine { nodes: 4, spacing_m: 5.0, jitter_m: -1.0 }
            .check()
            .is_err());
        assert!(TopologySpec::Grid { cols: 3, rows: 2, spacing_m: 5.0 }.check().is_ok());
    }

    #[test]
    fn json_round_trip_all_kinds() {
        for spec in [
            TopologySpec::RandomGeometric { nodes: 10, side_m: 25.0 },
            TopologySpec::Grid { cols: 4, rows: 3, spacing_m: 5.0 },
            TopologySpec::Campus {
                clusters: 2,
                nodes_per_cluster: 4,
                cluster_radius_m: 4.0,
                side_m: 20.0,
            },
            TopologySpec::PerturbedLine { nodes: 5, spacing_m: 5.0, jitter_m: 1.0 },
        ] {
            let text = spec.to_json().to_string();
            let back = TopologySpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(TopologySpec::from_json(&Value::obj().with("kind", "torus")).is_err());
    }
}
