//! Traffic-mix composition: layering workload models onto generated
//! topologies.
//!
//! A [`TrafficMix`] says how many flows of each workload family to run and
//! how to pick their endpoints; [`TrafficMix::compose`] turns that into
//! concrete [`FlowSpec`]s against a placement, routing each flow over the
//! minimum-ETX path (the same metric the paper's experiments use). All
//! endpoint draws come from [`StreamRng`] streams derived from the scenario
//! seed, so composition is deterministic per `(mix, topology, seed)`.

use wmn_netsim::{FlowSpec, Workload};
use wmn_phy::PhyParams;
use wmn_routing::LinkGraph;
use wmn_sim::{NodeId, StreamRng};
use wmn_topology::Topology;
use wmn_traffic::{CbrModel, VoipModel, WebModel};

use crate::json::Value;

/// Attempts per flow to find a routable endpoint pair before erroring out.
const PAIR_ATTEMPTS: usize = 64;

/// How flow endpoints are selected on a generated topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairPolicy {
    /// Source and destination uniform over distinct, mutually reachable
    /// stations.
    Random,
    /// Every flow terminates at node 0 (a mesh-gateway traffic pattern);
    /// sources are uniform over the remaining stations.
    Gateway,
    /// For each flow, eight random candidate pairs are drawn and the one
    /// whose minimum-ETX route has the most hops wins — stresses multi-hop
    /// forwarding the way the paper's line/Roofnet scenarios do.
    FarPairs,
}

impl PairPolicy {
    /// The JSON / slug name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            PairPolicy::Random => "random",
            PairPolicy::Gateway => "gateway",
            PairPolicy::FarPairs => "far-pairs",
        }
    }

    /// Parses [`PairPolicy::name`] back.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "random" => Ok(PairPolicy::Random),
            "gateway" => Ok(PairPolicy::Gateway),
            "far-pairs" => Ok(PairPolicy::FarPairs),
            other => Err(format!(
                "pairing must be one of \"random\", \"gateway\", \"far-pairs\", got {other:?}"
            )),
        }
    }
}

/// Flow counts per workload family plus the endpoint-selection policy.
///
/// Flows are composed in a fixed order — FTP, then web, then VoIP, then CBR
/// — so flow indices (and their RNG streams) are stable for a given mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficMix {
    /// Long-lived TCP transfers ([`Workload::Ftp`]).
    pub ftp: usize,
    /// Pareto/think-time web flows ([`WebModel::paper`]).
    pub web: usize,
    /// On-off VoIP calls ([`VoipModel::paper`]).
    pub voip: usize,
    /// Heavy CBR cross traffic ([`CbrModel::heavy`]).
    pub cbr: usize,
    /// Endpoint selection policy.
    pub pairing: PairPolicy,
}

impl TrafficMix {
    /// Total flows the mix will lay down.
    pub fn flow_count(&self) -> usize {
        self.ftp + self.web + self.voip + self.cbr
    }

    /// An id-friendly slug, e.g. `f2w1v1c0-random`.
    pub fn slug(&self) -> String {
        format!("f{}w{}v{}c{}-{}", self.ftp, self.web, self.voip, self.cbr, self.pairing.name())
    }

    /// Lays the mix onto `topo`: one [`FlowSpec`] per flow, endpoints chosen
    /// by the pairing policy, each routed over its minimum-ETX path (whose
    /// interior nodes double as the forwarder candidates for opportunistic
    /// schemes). Deterministic per `(self, topo, seed)`.
    ///
    /// # Errors
    ///
    /// Fails if the mix is empty, the topology has too few stations for the
    /// policy, or no routable pair can be found within the attempt budget
    /// (e.g. a station cut off from the rest).
    pub fn compose(
        &self,
        topo: &Topology,
        params: &PhyParams,
        seed: u64,
    ) -> Result<Vec<FlowSpec>, String> {
        if self.flow_count() == 0 {
            return Err("traffic mix has no flows".into());
        }
        let n = topo.node_count();
        if n < 2 {
            return Err(format!("topology {:?} has {n} stations; flows need two", topo.name));
        }
        let graph = LinkGraph::from_placement(params, &topo.positions);
        let mut flows = Vec::with_capacity(self.flow_count());
        for index in 0..self.flow_count() {
            let mut rng = StreamRng::derive(seed, &format!("scengen/mix/flow{index}"));
            let path = self.pick_path(&graph, n, &mut rng).map_err(|e| {
                format!("flow {index} on {:?} ({} policy): {e}", topo.name, self.pairing.name())
            })?;
            flows.push(FlowSpec { path, workload: self.workload(index) });
        }
        Ok(flows)
    }

    /// The workload of flow `index` under the fixed FTP→web→VoIP→CBR order.
    fn workload(&self, index: usize) -> Workload {
        if index < self.ftp {
            Workload::Ftp
        } else if index < self.ftp + self.web {
            Workload::Web(WebModel::paper())
        } else if index < self.ftp + self.web + self.voip {
            Workload::Voip(VoipModel::paper())
        } else {
            Workload::Cbr(CbrModel::heavy())
        }
    }

    fn pick_path(
        &self,
        graph: &LinkGraph,
        n: usize,
        rng: &mut StreamRng,
    ) -> Result<Vec<NodeId>, String> {
        let draw = |rng: &mut StreamRng| NodeId::new(rng.uniform_slots(n as u32 - 1));
        match self.pairing {
            PairPolicy::Random => {
                for _ in 0..PAIR_ATTEMPTS {
                    let (src, dst) = (draw(rng), draw(rng));
                    if src == dst {
                        continue;
                    }
                    if let Some(path) = graph.shortest_path(src, dst) {
                        return Ok(path);
                    }
                }
                Err(format!("no routable random pair in {PAIR_ATTEMPTS} attempts"))
            }
            PairPolicy::Gateway => {
                let gateway = NodeId::new(0);
                for _ in 0..PAIR_ATTEMPTS {
                    let src = draw(rng);
                    if src == gateway {
                        continue;
                    }
                    if let Some(path) = graph.shortest_path(src, gateway) {
                        return Ok(path);
                    }
                }
                Err(format!("no station reaches the gateway in {PAIR_ATTEMPTS} attempts"))
            }
            PairPolicy::FarPairs => {
                let mut best: Option<Vec<NodeId>> = None;
                let mut sampled = 0;
                for _ in 0..PAIR_ATTEMPTS {
                    if sampled == 8 {
                        break;
                    }
                    let (src, dst) = (draw(rng), draw(rng));
                    if src == dst {
                        continue;
                    }
                    let Some(path) = graph.shortest_path(src, dst) else { continue };
                    sampled += 1;
                    if best.as_ref().map_or(true, |b| path.len() > b.len()) {
                        best = Some(path);
                    }
                }
                best.ok_or_else(|| format!("no routable pair in {PAIR_ATTEMPTS} attempts"))
            }
        }
    }

    /// Serialises the mix as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj()
            .with("ftp", self.ftp)
            .with("web", self.web)
            .with("voip", self.voip)
            .with("cbr", self.cbr)
            .with("pairing", self.pairing.name())
    }

    /// Decodes a mix from the [`TrafficMix::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/invalid field, or rejecting an
    /// empty mix.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let mix = TrafficMix {
            ftp: crate::spec::req_usize(value, "ftp", "mix")?,
            web: crate::spec::req_usize(value, "web", "mix")?,
            voip: crate::spec::req_usize(value, "voip", "mix")?,
            cbr: crate::spec::req_usize(value, "cbr", "mix")?,
            pairing: PairPolicy::from_name(crate::spec::req_str(value, "pairing", "mix")?)?,
        };
        if mix.flow_count() == 0 {
            return Err("traffic mix has no flows".into());
        }
        Ok(mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::TopologySpec;

    fn mix() -> TrafficMix {
        TrafficMix { ftp: 2, web: 1, voip: 1, cbr: 1, pairing: PairPolicy::Random }
    }

    fn grid() -> Topology {
        TopologySpec::Grid { cols: 4, rows: 3, spacing_m: 5.0 }.generate(1)
    }

    #[test]
    fn compose_honours_flow_counts_and_order() {
        let flows = mix().compose(&grid(), &PhyParams::paper_216(), 3).unwrap();
        assert_eq!(flows.len(), 5);
        assert!(matches!(flows[0].workload, Workload::Ftp));
        assert!(matches!(flows[1].workload, Workload::Ftp));
        assert!(matches!(flows[2].workload, Workload::Web(_)));
        assert!(matches!(flows[3].workload, Workload::Voip(_)));
        assert!(matches!(flows[4].workload, Workload::Cbr(_)));
        for f in &flows {
            assert!(f.path.len() >= 2);
            assert!(f.path.iter().all(|n| n.index() < 12), "dense NodeId contract");
        }
    }

    #[test]
    fn compose_is_deterministic_per_seed() {
        let topo = grid();
        let params = PhyParams::paper_216();
        let a = mix().compose(&topo, &params, 9).unwrap();
        let b = mix().compose(&topo, &params, 9).unwrap();
        let paths = |fs: &[FlowSpec]| fs.iter().map(|f| f.path.clone()).collect::<Vec<_>>();
        assert_eq!(paths(&a), paths(&b));
        let c = mix().compose(&topo, &params, 10).unwrap();
        assert_ne!(paths(&a), paths(&c), "different seeds should draw different pairs");
    }

    #[test]
    fn gateway_policy_sinks_everything_at_node_zero() {
        let mix = TrafficMix { pairing: PairPolicy::Gateway, ..mix() };
        let flows = mix.compose(&grid(), &PhyParams::paper_216(), 5).unwrap();
        for f in &flows {
            assert_eq!(*f.path.last().unwrap(), NodeId::new(0));
            assert_ne!(f.path[0], NodeId::new(0));
        }
    }

    #[test]
    fn far_pairs_prefers_multi_hop_routes() {
        let line =
            TopologySpec::PerturbedLine { nodes: 6, spacing_m: 5.0, jitter_m: 0.2 }.generate(2);
        let mix = TrafficMix { ftp: 3, web: 0, voip: 0, cbr: 0, pairing: PairPolicy::FarPairs };
        let flows = mix.compose(&line, &PhyParams::paper_216(), 1).unwrap();
        assert!(
            flows.iter().any(|f| f.path.len() >= 4),
            "far-pairs on a 6-node line should find a 3+-hop route"
        );
    }

    #[test]
    fn empty_mix_and_tiny_topologies_are_rejected() {
        let empty = TrafficMix { ftp: 0, web: 0, voip: 0, cbr: 0, pairing: PairPolicy::Random };
        assert!(empty.compose(&grid(), &PhyParams::paper_216(), 1).is_err());
        let lonely = Topology::new("one", vec![wmn_phy::Position::new(0.0, 0.0)]);
        assert!(mix().compose(&lonely, &PhyParams::paper_216(), 1).is_err());
    }

    #[test]
    fn json_round_trip() {
        for pairing in [PairPolicy::Random, PairPolicy::Gateway, PairPolicy::FarPairs] {
            let m = TrafficMix { pairing, ..mix() };
            let text = m.to_json().to_string();
            let back = TrafficMix::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, m);
        }
        assert!(PairPolicy::from_name("nearest").is_err());
    }
}
