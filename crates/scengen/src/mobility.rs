//! Seeded mobility generation: [`MobilitySpec`] expands into a concrete
//! [`MotionPlan`].
//!
//! A spec is the *recipe* (which mobility family, at what speed); the plan
//! is the fully-determined per-node trajectory set the simulator consumes.
//! All randomness — drift headings, waypoint targets — is drawn **at
//! expansion time** from [`StreamRng`] streams derived from
//! `(seed, "scengen/mobility/…")` labels, so the same spec and seed always
//! produce the same trajectories, and the simulation itself stays free of
//! in-run mobility randomness (the determinism contract of
//! [`wmn_topology::motion`]).

use wmn_phy::Position;
use wmn_sim::{SimDuration, SimTime, StreamRng};
use wmn_topology::{MotionPlan, NodePath, Waypoint};

use crate::json::Value;
use crate::spec::req_f64;

/// How often expanded plans re-sample positions (kept below the default
/// [`wmn_topology::motion::DEFAULT_MOTION_TICK`] so pedestrian-to-vehicular
/// speeds stay well-resolved against the paper's ~5 m link granularity).
const EXPANDED_TICK: SimDuration = SimDuration::from_millis(50);

/// A mobility recipe for a whole placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MobilitySpec {
    /// Nobody moves — the default, and byte-identical to the pre-mobility
    /// simulator (an empty [`MotionPlan`] is expanded).
    Static,
    /// Every node drifts with a constant velocity: heading uniform on the
    /// circle, speed uniform in `[0, max_speed_mps]`, both drawn per node
    /// at expansion time.
    Drift {
        /// Upper bound on per-node drift speed, metres per second.
        max_speed_mps: f64,
    },
    /// Random-waypoint motion: each node pursues `legs` successive targets
    /// drawn uniformly from the placement's bounding box, moving at
    /// `speed_mps`, then parks at the last target.
    Waypoint {
        /// Travel speed between waypoints, metres per second.
        speed_mps: f64,
        /// Number of waypoints per node.
        legs: usize,
    },
}

impl MobilitySpec {
    /// The JSON / slug family name.
    pub fn kind(self) -> &'static str {
        match self {
            MobilitySpec::Static => "static",
            MobilitySpec::Drift { .. } => "drift",
            MobilitySpec::Waypoint { .. } => "waypoint",
        }
    }

    /// An id-friendly slug distinguishing the knobs, e.g. `drift2`,
    /// `wp3x1.5`. Speeds print via `f64`'s `Display` (no rounding), so
    /// distinct recipes never collide into one slug.
    pub fn slug(self) -> String {
        match self {
            MobilitySpec::Static => "static".into(),
            MobilitySpec::Drift { max_speed_mps } => format!("drift{max_speed_mps}"),
            MobilitySpec::Waypoint { speed_mps, legs } => format!("wp{legs}x{speed_mps}"),
        }
    }

    /// Basic sanity of the knobs (positive, finite speeds; at least one
    /// waypoint leg).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob.
    pub fn check(self) -> Result<(), String> {
        let positive = |value: f64, what: &str| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(format!("{}: {what} must be positive, got {value}", self.kind()))
            }
        };
        match self {
            MobilitySpec::Static => Ok(()),
            MobilitySpec::Drift { max_speed_mps } => positive(max_speed_mps, "max_speed_mps"),
            MobilitySpec::Waypoint { speed_mps, legs } => {
                positive(speed_mps, "speed_mps")?;
                if legs == 0 {
                    return Err("waypoint: legs must be at least 1".into());
                }
                Ok(())
            }
        }
    }

    /// Expands the recipe into per-node trajectories over `positions`.
    /// Deterministic per `(self, positions, seed)`; the static spec expands
    /// to the empty (default) plan, so it composes into scenarios
    /// byte-identically to not specifying mobility at all.
    ///
    /// # Panics
    ///
    /// Panics on invalid knobs ([`MobilitySpec::check`]) — a spec bug, not
    /// a runtime condition.
    pub fn expand(self, positions: &[Position], seed: u64) -> MotionPlan {
        if let Err(msg) = self.check() {
            panic!("invalid mobility spec: {msg}");
        }
        match self {
            MobilitySpec::Static => MotionPlan::default(),
            MobilitySpec::Drift { max_speed_mps } => {
                let paths = (0..positions.len())
                    .map(|i| {
                        let mut rng =
                            StreamRng::derive(seed, &format!("scengen/mobility/drift/{i}"));
                        let heading = rng.uniform() * std::f64::consts::TAU;
                        let speed = rng.uniform() * max_speed_mps;
                        NodePath::Drift {
                            vx_mps: speed * heading.cos(),
                            vy_mps: speed * heading.sin(),
                        }
                    })
                    .collect();
                MotionPlan { paths, tick: EXPANDED_TICK }
            }
            MobilitySpec::Waypoint { speed_mps, legs } => {
                let (min, max) = bounding_box(positions);
                let paths = (0..positions.len())
                    .map(|i| {
                        let mut rng = StreamRng::derive(seed, &format!("scengen/mobility/wp/{i}"));
                        let mut points = Vec::with_capacity(legs);
                        let mut from = positions[i];
                        let mut at_ns = 0u64;
                        for _ in 0..legs {
                            let target = Position::new(
                                min.x + rng.uniform() * (max.x - min.x),
                                min.y + rng.uniform() * (max.y - min.y),
                            );
                            // Travel time at the spec speed; a target on top
                            // of the current position still advances time by
                            // one nanosecond to keep waypoint instants
                            // strictly increasing.
                            let travel_ns =
                                ((from.distance_to(target) / speed_mps) * 1e9).ceil() as u64;
                            at_ns += travel_ns.max(1);
                            points.push(Waypoint { at: SimTime::from_nanos(at_ns), pos: target });
                            from = target;
                        }
                        NodePath::Waypoints(points)
                    })
                    .collect();
                MotionPlan { paths, tick: EXPANDED_TICK }
            }
        }
    }

    /// Serialises the spec as a JSON object (`kind` plus the family knobs).
    pub fn to_json(self) -> Value {
        let obj = Value::obj().with("kind", self.kind());
        match self {
            MobilitySpec::Static => obj,
            MobilitySpec::Drift { max_speed_mps } => obj.with("max_speed_mps", max_speed_mps),
            MobilitySpec::Waypoint { speed_mps, legs } => {
                obj.with("speed_mps", speed_mps).with("legs", legs)
            }
        }
    }

    /// Decodes a spec from the [`MobilitySpec::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/invalid field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let kind = crate::spec::req_str(value, "kind", "mobility")?;
        let spec = match kind {
            "static" => MobilitySpec::Static,
            "drift" => {
                MobilitySpec::Drift { max_speed_mps: req_f64(value, "max_speed_mps", "mobility")? }
            }
            "waypoint" => MobilitySpec::Waypoint {
                speed_mps: req_f64(value, "speed_mps", "mobility")?,
                legs: crate::spec::req_usize(value, "legs", "mobility")?,
            },
            other => {
                return Err(format!(
                    "mobility kind must be one of \"static\", \"drift\", \"waypoint\", \
                     got {other:?}"
                ))
            }
        };
        spec.check()?;
        Ok(spec)
    }
}

/// The axis-aligned bounding box of a placement (degenerate boxes — a
/// single point, a perfect line — are fine: the affected coordinate simply
/// never varies).
fn bounding_box(positions: &[Position]) -> (Position, Position) {
    let mut min = Position::new(f64::INFINITY, f64::INFINITY);
    let mut max = Position::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in positions {
        min = Position::new(min.x.min(p.x), min.y.min(p.y));
        max = Position::new(max.x.max(p.x), max.y.max(p.y));
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_positions() -> Vec<Position> {
        (0..6).map(|i| Position::new(f64::from(i % 3) * 5.0, f64::from(i / 3) * 5.0)).collect()
    }

    #[test]
    fn static_expands_to_the_default_plan() {
        let plan = MobilitySpec::Static.expand(&grid_positions(), 7);
        assert_eq!(plan, MotionPlan::default());
        assert!(plan.is_static());
    }

    #[test]
    fn drift_is_deterministic_and_bounded() {
        let positions = grid_positions();
        let spec = MobilitySpec::Drift { max_speed_mps: 3.0 };
        let a = spec.expand(&positions, 9);
        let b = spec.expand(&positions, 9);
        assert_eq!(a, b, "same seed, same trajectories");
        let c = spec.expand(&positions, 10);
        assert_ne!(a, c, "different seeds drift differently");
        assert!(!a.is_static());
        assert_eq!(a.paths.len(), positions.len());
        for path in &a.paths {
            let NodePath::Drift { vx_mps, vy_mps } = path else {
                panic!("drift spec must expand to drift paths")
            };
            assert!(vx_mps.hypot(*vy_mps) <= 3.0 + 1e-12, "speed within the bound");
        }
    }

    #[test]
    fn waypoints_stay_in_the_bounding_box_and_advance_in_time() {
        let positions = grid_positions();
        let spec = MobilitySpec::Waypoint { speed_mps: 2.0, legs: 4 };
        let plan = spec.expand(&positions, 3);
        assert_eq!(plan, spec.expand(&positions, 3), "deterministic per seed");
        for (i, path) in plan.paths.iter().enumerate() {
            let NodePath::Waypoints(points) = path else { panic!("waypoint paths expected") };
            assert_eq!(points.len(), 4);
            assert!(path.check().is_ok(), "node {i}: {path:?}");
            for wp in points {
                assert!((0.0..=10.0).contains(&wp.pos.x) && (0.0..=10.0).contains(&wp.pos.y));
            }
        }
        // Plans pass the simulator's structural validation.
        assert_eq!(plan.check(positions.len()), Ok(()));
    }

    #[test]
    fn check_rejects_bad_knobs() {
        assert!(MobilitySpec::Drift { max_speed_mps: 0.0 }.check().is_err());
        assert!(MobilitySpec::Drift { max_speed_mps: f64::NAN }.check().is_err());
        assert!(MobilitySpec::Waypoint { speed_mps: 2.0, legs: 0 }.check().is_err());
        assert!(MobilitySpec::Waypoint { speed_mps: -1.0, legs: 2 }.check().is_err());
        assert!(MobilitySpec::Static.check().is_ok());
    }

    #[test]
    fn json_round_trip_all_kinds() {
        for spec in [
            MobilitySpec::Static,
            MobilitySpec::Drift { max_speed_mps: 2.5 },
            MobilitySpec::Waypoint { speed_mps: 1.5, legs: 3 },
        ] {
            let text = spec.to_json().to_string();
            let back = MobilitySpec::from_json(&crate::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
        }
        assert!(MobilitySpec::from_json(&Value::obj().with("kind", "teleport")).is_err());
        assert!(MobilitySpec::from_json(&Value::obj().with("kind", "drift")).is_err());
    }

    #[test]
    fn slugs_distinguish_knobs() {
        assert_eq!(MobilitySpec::Static.slug(), "static");
        assert_eq!(MobilitySpec::Drift { max_speed_mps: 2.0 }.slug(), "drift2");
        assert_eq!(MobilitySpec::Waypoint { speed_mps: 1.5, legs: 3 }.slug(), "wp3x1.5");
        // Regression: nearby speeds must not round into the same slug —
        // sweep-cell names are keyed on it.
        assert_ne!(
            MobilitySpec::Drift { max_speed_mps: 1.6 }.slug(),
            MobilitySpec::Drift { max_speed_mps: 2.4 }.slug(),
        );
    }
}
