//! # wmn_scengen — procedural scenario generation
//!
//! The paper evaluates a handful of hand-placed topologies; this crate
//! turns the reproduction into a general experiment platform by making
//! scenarios *data*:
//!
//! * [`TopologySpec`] — seeded procedural placement generators (random
//!   geometric, regular grid, clustered campus, perturbed line) emitting
//!   [`wmn_topology::Topology`] deterministically per seed;
//! * [`TrafficMix`] — composes `wmn_traffic` workloads (FTP / web / VoIP /
//!   CBR) onto a placement with pluggable endpoint policies, routing each
//!   flow over its minimum-ETX path;
//! * [`MobilitySpec`] — seeded mobility recipes (static, per-node drift,
//!   random waypoint) expanding into concrete
//!   [`wmn_topology::MotionPlan`] trajectories at materialisation time;
//! * [`ScenarioSpec`] — a plain-struct description of one run that
//!   round-trips through the hand-rolled JSON in [`wmn_exec::json`] and
//!   [`materialises`](ScenarioSpec::materialise) into a validated
//!   [`wmn_netsim::Scenario`];
//! * [`SweepSpec`] — a cartesian grid of scenario specs plus the run-seed
//!   axis, expanded in a fixed order for `wmn_exec`'s deterministic
//!   engine. The `scenario_sweep` binary in `wmn_experiments` drives it.
//!
//! Everything is deterministic: the same spec JSON and seeds produce
//! byte-identical placements, flows, and (through the engine's plan-order
//! contract) byte-identical sweep reports at any worker count.
//!
//! ## Example
//!
//! ```
//! use wmn_scengen::{PairPolicy, PhyPreset, ScenarioSpec, TopologySpec, TrafficMix};
//! use wmn_netsim::Scheme;
//!
//! let spec = ScenarioSpec {
//!     name: "my-mesh".into(),
//!     topology: TopologySpec::RandomGeometric { nodes: 12, side_m: 30.0 },
//!     mix: TrafficMix { ftp: 2, web: 1, voip: 1, cbr: 0, pairing: PairPolicy::Random },
//!     scheme: Scheme::Ripple { aggregation: 16 },
//!     phy: PhyPreset::Mbps216,
//!     ber: None,
//!     duration_ms: 50,
//!     seed: 7,
//!     max_forwarders: 5,
//!     mobility: wmn_scengen::MobilitySpec::Static,
//!     route_refresh_ms: None,
//!     shards: None,
//! };
//! // Specs are data: they round-trip to disk …
//! let reloaded = ScenarioSpec::parse(&spec.to_json().to_string()).unwrap();
//! assert_eq!(reloaded, spec);
//! // … and expand deterministically into runnable scenarios.
//! let scenario = reloaded.materialise().unwrap();
//! assert_eq!(scenario.positions.len(), 12);
//! let result = wmn_netsim::run(&scenario);
//! assert_eq!(result.flows.len(), 4);
//! ```

pub mod mix;
pub mod mobility;
pub mod spec;
pub mod sweep;
pub mod topo;

/// Re-export of the JSON tree this crate's specs serialise through.
pub use wmn_exec::json;

pub use mix::{PairPolicy, TrafficMix};
pub use mobility::MobilitySpec;
pub use spec::{scheme_from_name, scheme_name, PhyPreset, ScenarioSpec};
pub use sweep::SweepSpec;
pub use topo::{is_connected, TopologySpec};
