//! [`ScenarioSpec`]: a plain-struct, JSON-round-trippable description of one
//! complete run.
//!
//! A spec carries everything [`materialise`](ScenarioSpec::materialise)
//! needs to build a [`wmn_netsim::Scenario`]: the topology family and seed,
//! the traffic mix, the forwarding scheme, the PHY preset, and the run
//! length. Specs are *data* — they can be written to disk, committed as CI
//! fixtures, and expanded into grids by [`crate::SweepSpec`] — and
//! materialisation is deterministic, so a spec file pins a run exactly.

use wmn_netsim::{Scenario, Scheme};
use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

use crate::json::Value;
use crate::mix::TrafficMix;
use crate::mobility::MobilitySpec;
use crate::topo::TopologySpec;

/// The PHY parameter preset a spec runs under (Table I of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhyPreset {
    /// 216 Mbps MIMO preset ([`PhyParams::paper_216`]).
    Mbps216,
    /// 6 Mbps legacy preset ([`PhyParams::paper_6`]).
    Mbps6,
}

impl PhyPreset {
    /// The JSON name: `"216mbps"` / `"6mbps"`.
    pub fn name(self) -> &'static str {
        match self {
            PhyPreset::Mbps216 => "216mbps",
            PhyPreset::Mbps6 => "6mbps",
        }
    }

    /// Parses [`PhyPreset::name`] back.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "216mbps" => Ok(PhyPreset::Mbps216),
            "6mbps" => Ok(PhyPreset::Mbps6),
            other => Err(format!("phy must be \"216mbps\" or \"6mbps\", got {other:?}")),
        }
    }

    /// The parameter set, with `ber` overriding the preset's bit-error rate
    /// when given.
    pub fn params(self, ber: Option<f64>) -> PhyParams {
        let params = match self {
            PhyPreset::Mbps216 => PhyParams::paper_216(),
            PhyPreset::Mbps6 => PhyParams::paper_6(),
        };
        match ber {
            Some(ber) => params.with_ber(ber),
            None => params,
        }
    }
}

/// Serialises a scheme as its figure label (`"DCF"`, `"AFR"`, `"RIPPLE-1"`,
/// `"RIPPLE-16"`, `"preExOR"`, `"MCExOR"`).
pub fn scheme_name(scheme: Scheme) -> &'static str {
    scheme.label()
}

/// Parses a [`scheme_name`] back into a [`Scheme`].
///
/// # Errors
///
/// Returns a message listing the valid labels.
pub fn scheme_from_name(name: &str) -> Result<Scheme, String> {
    match name {
        "DCF" => Ok(Scheme::Dcf { aggregation: 1 }),
        "AFR" => Ok(Scheme::Dcf { aggregation: 16 }),
        "RIPPLE-1" => Ok(Scheme::Ripple { aggregation: 1 }),
        "RIPPLE-16" => Ok(Scheme::Ripple { aggregation: 16 }),
        "preExOR" => Ok(Scheme::PreExor),
        "MCExOR" => Ok(Scheme::McExor),
        other => Err(format!(
            "scheme must be one of \"DCF\", \"AFR\", \"RIPPLE-1\", \"RIPPLE-16\", \"preExOR\", \
             \"MCExOR\", got {other:?}"
        )),
    }
}

/// A fully-described, reproducible run: topology recipe + traffic mix +
/// scheme + PHY + duration + seed.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Name used for the materialised scenario (results, logs, reports).
    pub name: String,
    /// The procedural topology recipe.
    pub topology: TopologySpec,
    /// The traffic mix to lay onto it.
    pub mix: TrafficMix,
    /// The forwarding scheme under test.
    pub scheme: Scheme,
    /// PHY preset.
    pub phy: PhyPreset,
    /// Optional bit-error-rate override on the preset.
    pub ber: Option<f64>,
    /// Simulated duration, milliseconds.
    pub duration_ms: u64,
    /// Master seed: drives topology generation, endpoint draws, mobility
    /// expansion, and every in-run RNG stream.
    pub seed: u64,
    /// Cap on forwarders per opportunistic list (paper default: 5).
    pub max_forwarders: usize,
    /// Mobility recipe, expanded over the generated placement at
    /// materialisation time ([`MobilitySpec::Static`] — the default —
    /// yields the byte-identical static simulation).
    pub mobility: MobilitySpec,
    /// Live min-ETX route-refresh period, milliseconds. `None` — the
    /// default — freezes routes at their build-time tables (the
    /// pre-refresh behaviour, byte for byte).
    pub route_refresh_ms: Option<u64>,
    /// Shard count for the conservative parallel engine. `None` — the
    /// default — runs the legacy single-loop engine (baseline bytes);
    /// `Some(k)` runs the sharded engine, whose results are bit-identical
    /// for every `k >= 1`.
    pub shards: Option<u32>,
}

impl ScenarioSpec {
    /// The campus-at-scale preset: 32 clusters × 32 stations = 1,024 nodes
    /// in a 60 m square — the workload the sharded engine exists for, and
    /// the placement `wmn_bench`'s shard entry runs at two shard counts.
    /// Density is deliberately high (mean nearest neighbour under a metre)
    /// so the placement is radio-connected at the first attempt; `shards`
    /// is left `None` for the caller to choose an engine.
    pub fn campus_scale() -> Self {
        ScenarioSpec {
            name: "campus-1k".into(),
            topology: TopologySpec::Campus {
                clusters: 32,
                nodes_per_cluster: 32,
                cluster_radius_m: 3.0,
                side_m: 60.0,
            },
            mix: TrafficMix {
                ftp: 2,
                web: 0,
                voip: 2,
                cbr: 2,
                pairing: crate::mix::PairPolicy::Random,
            },
            scheme: Scheme::Ripple { aggregation: 16 },
            phy: PhyPreset::Mbps216,
            ber: None,
            duration_ms: 40,
            seed: 1,
            max_forwarders: 5,
            mobility: MobilitySpec::Static,
            route_refresh_ms: None,
            shards: None,
        }
    }

    /// Expands the spec into a runnable, validated [`Scenario`]:
    /// generates the placement, composes and routes the flows, and applies
    /// the PHY preset. Deterministic — same spec, same scenario, bit for
    /// bit.
    ///
    /// # Errors
    ///
    /// Returns composition failures (unroutable endpoints, empty mix) and
    /// anything [`Scenario::validate`] rejects, prefixed with the spec name.
    pub fn materialise(&self) -> Result<Scenario, String> {
        let err = |msg: String| format!("spec {:?}: {msg}", self.name);
        let topo = self.topology.generate(self.seed);
        let params = self.phy.params(self.ber);
        let flows = self.mix.compose(&topo, &params, self.seed).map_err(err)?;
        let motion = self.mobility.expand(&topo.positions, self.seed);
        let scenario = Scenario {
            name: self.name.clone(),
            params,
            positions: topo.positions,
            scheme: self.scheme,
            flows,
            duration: SimDuration::from_millis(self.duration_ms),
            seed: self.seed,
            max_forwarders: self.max_forwarders,
            motion,
            route_refresh: self.route_refresh_ms.map(SimDuration::from_millis),
            shards: self.shards,
        };
        scenario.validate().map_err(err)?;
        Ok(scenario)
    }

    /// Serialises the spec as a JSON object (the schema in the README's
    /// "Generating your own scenarios" section).
    pub fn to_json(&self) -> Value {
        let mut doc = Value::obj()
            .with("name", self.name.as_str())
            .with("topology", self.topology.to_json())
            .with("mix", self.mix.to_json())
            .with("scheme", scheme_name(self.scheme))
            .with("phy", self.phy.name());
        if let Some(ber) = self.ber {
            doc = doc.with("ber", ber);
        }
        // The mobility key is omitted for static specs so every
        // pre-mobility spec file (and the committed CI baseline's spec
        // echo) stays byte-identical.
        if self.mobility != MobilitySpec::Static {
            doc = doc.with("mobility", self.mobility.to_json());
        }
        // Likewise the refresh knob: omitted when off, so pre-refresh spec
        // files stay byte-identical.
        if let Some(ms) = self.route_refresh_ms {
            doc = doc.with("route_refresh_ms", ms);
        }
        // And the shard knob: omitted when the legacy engine is in use, so
        // pre-sharding spec files stay byte-identical.
        if let Some(shards) = self.shards {
            doc = doc.with("shards", u64::from(shards));
        }
        doc.with("duration_ms", self.duration_ms)
            .with("seed", self.seed)
            .with("max_forwarders", self.max_forwarders)
    }

    /// Decodes a spec from the [`ScenarioSpec::to_json`] shape.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or invalid field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        Ok(ScenarioSpec {
            name: req_str(value, "name", "scenario")?.to_string(),
            topology: TopologySpec::from_json(
                value.get("topology").ok_or("scenario: missing \"topology\"")?,
            )?,
            mix: TrafficMix::from_json(value.get("mix").ok_or("scenario: missing \"mix\"")?)?,
            scheme: scheme_from_name(req_str(value, "scheme", "scenario")?)?,
            phy: PhyPreset::from_name(req_str(value, "phy", "scenario")?)?,
            ber: match value.get("ber") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_f64().ok_or("scenario: \"ber\" must be a number")?),
            },
            duration_ms: req_u64(value, "duration_ms", "scenario")?,
            seed: req_u64(value, "seed", "scenario")?,
            max_forwarders: req_usize(value, "max_forwarders", "scenario")?,
            mobility: match value.get("mobility") {
                None | Some(Value::Null) => MobilitySpec::Static,
                Some(v) => MobilitySpec::from_json(v)?,
            },
            route_refresh_ms: match value.get("route_refresh_ms") {
                None | Some(Value::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or("scenario: \"route_refresh_ms\" must be an integer")?)
                }
            },
            shards: match value.get("shards") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|k| u32::try_from(k).ok())
                        .filter(|&k| k > 0)
                        .ok_or("scenario: \"shards\" must be a positive integer")?,
                ),
            },
        })
    }

    /// Parses a spec from JSON text ([`crate::json::parse`] +
    /// [`ScenarioSpec::from_json`]).
    ///
    /// # Errors
    ///
    /// Returns either the JSON syntax error or the first schema violation.
    pub fn parse(text: &str) -> Result<Self, String> {
        ScenarioSpec::from_json(&crate::json::parse(text)?)
    }
}

// Field-decoding helpers shared by every spec module (`context` names the
// enclosing object in error messages).

pub(crate) fn req_str<'v>(value: &'v Value, key: &str, context: &str) -> Result<&'v str, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{context}: missing or non-string \"{key}\""))
}

pub(crate) fn req_u64(value: &Value, key: &str, context: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{context}: missing or non-integer \"{key}\""))
}

pub(crate) fn req_usize(value: &Value, key: &str, context: &str) -> Result<usize, String> {
    usize::try_from(req_u64(value, key, context)?)
        .map_err(|_| format!("{context}: \"{key}\" does not fit a usize"))
}

pub(crate) fn req_f64(value: &Value, key: &str, context: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{context}: missing or non-numeric \"{key}\""))
}

pub(crate) fn req_u64_list(value: &Value, key: &str, context: &str) -> Result<Vec<u64>, String> {
    let items = value
        .get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{context}: missing or non-array \"{key}\""))?;
    items
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("{context}: \"{key}\" entries must be integers")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::PairPolicy;
    use wmn_netsim::run;

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "demo".into(),
            topology: TopologySpec::Grid { cols: 3, rows: 2, spacing_m: 5.0 },
            mix: TrafficMix { ftp: 1, web: 0, voip: 1, cbr: 0, pairing: PairPolicy::Random },
            scheme: Scheme::Ripple { aggregation: 16 },
            phy: PhyPreset::Mbps216,
            ber: None,
            duration_ms: 40,
            seed: 3,
            max_forwarders: 5,
            mobility: MobilitySpec::Static,
            route_refresh_ms: None,
            shards: None,
        }
    }

    #[test]
    fn materialise_builds_a_runnable_scenario() {
        let scenario = spec().materialise().unwrap();
        assert_eq!(scenario.name, "demo");
        assert_eq!(scenario.positions.len(), 6);
        assert_eq!(scenario.flows.len(), 2);
        assert_eq!(scenario.validate(), Ok(()));
        // It actually runs end to end.
        let result = run(&scenario);
        assert_eq!(result.flows.len(), 2);
    }

    #[test]
    fn materialise_is_deterministic() {
        let a = spec().materialise().unwrap();
        let b = spec().materialise().unwrap();
        assert_eq!(a.positions, b.positions);
        assert_eq!(
            a.flows.iter().map(|f| f.path.clone()).collect::<Vec<_>>(),
            b.flows.iter().map(|f| f.path.clone()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn json_round_trip_with_and_without_ber() {
        let plain = spec();
        assert_eq!(ScenarioSpec::parse(&plain.to_json().to_string()).unwrap(), plain);
        let with_ber = ScenarioSpec { ber: Some(1e-5), phy: PhyPreset::Mbps6, ..spec() };
        assert_eq!(ScenarioSpec::parse(&with_ber.to_json().to_string()).unwrap(), with_ber);
    }

    #[test]
    fn mobility_round_trips_and_static_stays_implicit() {
        let static_text = spec().to_json().to_string();
        assert!(
            !static_text.contains("mobility"),
            "static specs must serialise without a mobility key (baseline byte-compat)"
        );
        let mobile =
            ScenarioSpec { mobility: MobilitySpec::Drift { max_speed_mps: 2.0 }, ..spec() };
        let text = mobile.to_json().to_string();
        assert!(text.contains("\"mobility\""), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), mobile);
    }

    #[test]
    fn route_refresh_round_trips_and_off_stays_implicit() {
        let off_text = spec().to_json().to_string();
        assert!(
            !off_text.contains("route_refresh"),
            "refresh-off specs must serialise without the key (baseline byte-compat)"
        );
        let on = ScenarioSpec { route_refresh_ms: Some(50), ..spec() };
        let text = on.to_json().to_string();
        assert!(text.contains("\"route_refresh_ms\": 50"), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), on);
        let scenario = on.materialise().unwrap();
        assert_eq!(scenario.route_refresh, Some(SimDuration::from_millis(50)));
        assert_eq!(spec().materialise().unwrap().route_refresh, None);
    }

    #[test]
    fn shards_round_trip_and_legacy_stays_implicit() {
        let legacy_text = spec().to_json().to_string();
        assert!(
            !legacy_text.contains("shards"),
            "legacy-engine specs must serialise without the key (baseline byte-compat)"
        );
        let sharded = ScenarioSpec { shards: Some(4), ..spec() };
        let text = sharded.to_json().to_string();
        assert!(text.contains("\"shards\": 4"), "{text}");
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), sharded);
        assert_eq!(sharded.materialise().unwrap().shards, Some(4));
        assert_eq!(spec().materialise().unwrap().shards, None);
        // Zero shards is meaningless (there is no zero-queue engine).
        let zero = text.replace("\"shards\": 4", "\"shards\": 0");
        let msg = ScenarioSpec::parse(&zero).unwrap_err();
        assert!(msg.contains("positive"), "{msg}");
    }

    #[test]
    fn campus_scale_preset_materialises_a_thousand_station_mesh() {
        let scenario = ScenarioSpec::campus_scale().materialise().unwrap();
        assert_eq!(scenario.positions.len(), 1024);
        assert_eq!(scenario.flows.len(), 6);
        assert_eq!(scenario.validate(), Ok(()));
    }

    #[test]
    fn mobile_specs_materialise_into_moving_scenarios() {
        let mobile =
            ScenarioSpec { mobility: MobilitySpec::Drift { max_speed_mps: 2.0 }, ..spec() };
        let scenario = mobile.materialise().unwrap();
        assert!(!scenario.motion.is_static());
        assert_eq!(scenario.motion.paths.len(), scenario.positions.len());
        // Mobile generated scenarios run end to end.
        let result = run(&scenario);
        assert_eq!(result.flows.len(), 2);
        // Static materialisation is unchanged by the mobility field's
        // existence.
        assert!(spec().materialise().unwrap().motion.is_static());
    }

    #[test]
    fn ber_override_reaches_the_params() {
        let s = ScenarioSpec { ber: Some(1e-5), ..spec() };
        let scenario = s.materialise().unwrap();
        assert_eq!(scenario.params.ber, 1e-5);
    }

    #[test]
    fn decode_errors_name_the_field() {
        let missing = ScenarioSpec::parse("{\"name\": \"x\"}").unwrap_err();
        assert!(missing.contains("topology"), "{missing}");
        let text = spec().to_json().to_string().replace("RIPPLE-16", "RIPPLE-32");
        let bad_scheme = ScenarioSpec::parse(&text).unwrap_err();
        assert!(bad_scheme.contains("RIPPLE-32"), "{bad_scheme}");
        assert!(ScenarioSpec::parse("not json").is_err());
    }

    #[test]
    fn scheme_names_round_trip() {
        for scheme in [
            Scheme::Dcf { aggregation: 1 },
            Scheme::Dcf { aggregation: 16 },
            Scheme::Ripple { aggregation: 1 },
            Scheme::Ripple { aggregation: 16 },
            Scheme::PreExor,
            Scheme::McExor,
        ] {
            assert_eq!(scheme_from_name(scheme_name(scheme)).unwrap(), scheme);
        }
    }
}
