//! Property tests for the procedural generators: node counts are honoured,
//! generation is deterministic per seed, random-geometric placements at
//! threshold density come out connected, grid degrees stay inside lattice
//! bounds, and composed traffic always satisfies the NodeId contract.

use proptest::prelude::*;
use wmn_phy::PhyParams;
use wmn_scengen::{is_connected, PairPolicy, TopologySpec, TrafficMix};
use wmn_sim::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every family generates exactly the stations its spec promises.
    #[test]
    fn prop_node_count_honoured(
        nodes in 2usize..20,
        cols in 1usize..6,
        rows in 2usize..5,
        seed in any::<u64>(),
    ) {
        let specs = [
            TopologySpec::RandomGeometric { nodes, side_m: 8.0 + nodes as f64 },
            TopologySpec::Grid { cols, rows, spacing_m: 5.0 },
            TopologySpec::Campus {
                clusters: rows,
                nodes_per_cluster: cols + 1,
                cluster_radius_m: 4.0,
                side_m: 9.0 * rows as f64,
            },
            TopologySpec::PerturbedLine { nodes, spacing_m: 5.0, jitter_m: 0.5 },
        ];
        for spec in specs {
            let topo = spec.generate(seed);
            prop_assert_eq!(topo.node_count(), spec.node_count(), "{:?}", spec);
            // Dense NodeId contract: every id below node_count resolves.
            for i in 0..topo.node_count() {
                prop_assert!(topo.contains(NodeId::new(i as u32)));
            }
        }
    }

    /// Same spec + seed ⇒ byte-identical placement; different seed ⇒ a
    /// different placement for the stochastic families.
    #[test]
    fn prop_generation_deterministic_per_seed(nodes in 4usize..16, seed in any::<u64>()) {
        let spec = TopologySpec::RandomGeometric { nodes, side_m: 6.0 + 2.0 * nodes as f64 };
        let a = spec.generate(seed);
        let b = spec.generate(seed);
        prop_assert_eq!(&a.positions, &b.positions);
        let c = spec.generate(seed.wrapping_add(1));
        prop_assert_ne!(&a.positions, &c.positions);
    }

    /// At threshold density (≥ ~1 station per 8 m × 8 m cell, usable links
    /// reach ≈15 m) random-geometric placements are always connected —
    /// the generator's deterministic rejection loop guarantees it.
    #[test]
    fn prop_random_geometric_connected_above_threshold_density(
        nodes in 9usize..24,
        seed in any::<u64>(),
    ) {
        let side_m = 8.0 * (nodes as f64).sqrt();
        let topo = TopologySpec::RandomGeometric { nodes, side_m }.generate(seed);
        prop_assert!(
            is_connected(&topo.positions),
            "rgg nodes={} side={:.1} seed={} must be connected",
            nodes, side_m, seed
        );
    }

    /// Grid neighbour degrees stay inside the lattice bounds: counting
    /// stations within one lattice constant (plus slack), corners see 2,
    /// edges 3, interior nodes 4 — never more, never fewer.
    #[test]
    fn prop_grid_degree_bounds(cols in 2usize..7, rows in 2usize..6, seed in any::<u64>()) {
        let spacing_m = 5.0;
        let topo = TopologySpec::Grid { cols, rows, spacing_m }.generate(seed);
        for a in 0..topo.node_count() {
            let degree = (0..topo.node_count())
                .filter(|&b| b != a)
                .filter(|&b| {
                    topo.distance(NodeId::new(a as u32), NodeId::new(b as u32)) < spacing_m * 1.05
                })
                .count();
            prop_assert!(
                (2..=4).contains(&degree),
                "grid {}x{} node {} has lattice degree {}",
                cols, rows, a, degree
            );
        }
    }

    /// Composition honours the requested flow counts and only ever emits
    /// in-range, routed paths — for every pairing policy.
    #[test]
    fn prop_composition_valid_for_every_policy(
        nodes in 6usize..14,
        ftp in 0usize..3,
        voip in 0usize..3,
        seed in any::<u64>(),
    ) {
        let topo = TopologySpec::RandomGeometric { nodes, side_m: 7.0 * (nodes as f64).sqrt() }
            .generate(seed);
        let params = PhyParams::paper_216();
        for pairing in [PairPolicy::Random, PairPolicy::Gateway, PairPolicy::FarPairs] {
            let mix = TrafficMix { ftp, web: 1, voip, cbr: 1, pairing };
            let flows = mix.compose(&topo, &params, seed).unwrap();
            prop_assert_eq!(flows.len(), mix.flow_count());
            for flow in &flows {
                prop_assert!(flow.path.len() >= 2);
                prop_assert!(flow.path.iter().all(|n| topo.contains(*n)));
                prop_assert!(flow.path.windows(2).all(|w| w[0] != w[1]));
            }
        }
    }
}
