//! Equivalence suite for the mobility refactor: a static mobility spec —
//! in any of its representations — must produce **bit-identical**
//! [`wmn_netsim::RunResult`]s to a scenario with no mobility at all,
//! across a seeded grid of generated scenarios.
//!
//! Together with the unchanged golden snapshots and the committed
//! `ci/baseline_repro.json` (which pin today's static outputs to the
//! pre-refactor runner's bytes), this is the proof that the layered stack
//! and mobility subsystem changed nothing for every run that existed
//! before them: `RunResult`'s `PartialEq` compares all `f64` fields
//! exactly, so equality here is bit-equality of every throughput, delay
//! and MoS.

use proptest::prelude::*;
use wmn_netsim::{run, NodePath, Scheme, Waypoint};
use wmn_scengen::{MobilitySpec, PairPolicy, PhyPreset, ScenarioSpec, TopologySpec, TrafficMix};
use wmn_sim::{SimDuration, SimTime};

fn spec(topo_pick: usize, scheme_pick: usize, seed: u64) -> ScenarioSpec {
    let topology = match topo_pick % 3 {
        0 => TopologySpec::Grid { cols: 3, rows: 2, spacing_m: 5.0 },
        1 => TopologySpec::RandomGeometric { nodes: 8, side_m: 22.0 },
        _ => TopologySpec::PerturbedLine { nodes: 5, spacing_m: 5.0, jitter_m: 0.5 },
    };
    let scheme = match scheme_pick % 4 {
        0 => Scheme::Dcf { aggregation: 1 },
        1 => Scheme::Dcf { aggregation: 16 },
        2 => Scheme::Ripple { aggregation: 16 },
        _ => Scheme::PreExor,
    };
    ScenarioSpec {
        name: format!("equiv-{topo_pick}-{scheme_pick}-{seed}"),
        topology,
        mix: TrafficMix { ftp: 1, web: 0, voip: 1, cbr: 0, pairing: PairPolicy::Random },
        scheme,
        phy: PhyPreset::Mbps216,
        ber: None,
        duration_ms: 60,
        seed,
        max_forwarders: 5,
        mobility: MobilitySpec::Static,
        route_refresh_ms: None,
        shards: None,
    }
}

proptest! {
    /// Across the seeded grid, four representations of "nobody moves" must
    /// produce the same result, bit for bit:
    ///
    /// 1. the implicit static spec (empty plan — schedules nothing);
    /// 2. one explicit `NodePath::Static` per node (still static);
    /// 3. a zero-velocity drift per node (`is_static` recognises it, so it
    ///    degenerates to case 2 — pinned so that recognition never rots);
    /// 4. a *stationary waypoint* per node (each node's single waypoint is
    ///    its own placement). Case 4 is the strongest: the plan is
    ///    structurally mobile, so mobility ticks fire and every node's
    ///    trajectory is re-sampled on each tick; the runner's
    ///    unchanged-position short-circuit (and, for any position that did
    ///    change bits, the incremental refresh pinned bit-identical to a
    ///    rebuild in `wmn_phy`) must keep the run byte-identical to never
    ///    ticking at all.
    #[test]
    fn prop_static_mobility_runs_are_bit_identical(
        topo_pick in 0usize..3,
        scheme_pick in 0usize..4,
        seed in 1u64..64,
    ) {
        let implicit = spec(topo_pick, scheme_pick, seed).materialise().expect("materialise");
        let baseline = run(&implicit);

        let mut explicit = implicit.clone();
        explicit.motion.paths = vec![NodePath::Static; explicit.positions.len()];
        prop_assert_eq!(&baseline, &run(&explicit), "explicit static paths drifted");

        let mut zero_drift = implicit.clone();
        zero_drift.motion.paths =
            vec![NodePath::Drift { vx_mps: 0.0, vy_mps: 0.0 }; zero_drift.positions.len()];
        prop_assert_eq!(&baseline, &run(&zero_drift), "zero-velocity drift drifted");

        let mut parked = implicit;
        parked.motion.paths = parked
            .positions
            .iter()
            .map(|&pos| {
                NodePath::Waypoints(vec![Waypoint { at: SimTime::from_millis(10), pos }])
            })
            .collect();
        parked.motion.tick = SimDuration::from_millis(5);
        prop_assert!(!parked.motion.is_static(), "stationary waypoints are structurally mobile");
        prop_assert_eq!(
            &baseline,
            &run(&parked),
            "ticking refreshes towards identical positions drifted"
        );
    }

    /// The same contract for live routing: over a topology where nobody
    /// moves, the link graph a refresh pass sees is bit-identical to the
    /// build-time one, so the recomputed min-ETX routes equal the frozen
    /// tables and the run is byte-identical to refresh-off — for *any*
    /// refresh interval. (The refresh pass consumes no RNG, which is what
    /// makes this provable rather than merely likely.)
    #[test]
    fn prop_route_refresh_over_static_topology_is_a_no_op(
        topo_pick in 0usize..3,
        scheme_pick in 0usize..4,
        seed in 1u64..32,
        interval_ms in 1u64..80,
    ) {
        let frozen = spec(topo_pick, scheme_pick, seed).materialise().expect("materialise");
        let mut live_spec = spec(topo_pick, scheme_pick, seed);
        live_spec.route_refresh_ms = Some(interval_ms);
        let live = live_spec.materialise().expect("materialise");
        prop_assert_eq!(
            run(&frozen),
            run(&live),
            "a {} ms refresh over a static topology drifted",
            interval_ms
        );
    }

    /// Sanity on the other side: an actually-moving plan over the same
    /// scenarios runs to completion and (being deterministic) reproduces
    /// itself — mobility must not introduce run-to-run nondeterminism.
    #[test]
    fn prop_mobile_runs_are_deterministic(
        topo_pick in 0usize..3,
        scheme_pick in 0usize..4,
        seed in 1u64..32,
    ) {
        let mut mobile = spec(topo_pick, scheme_pick, seed);
        mobile.mobility = MobilitySpec::Drift { max_speed_mps: 3.0 };
        let scenario = mobile.materialise().expect("materialise");
        prop_assert!(!scenario.motion.is_static());
        let a = run(&scenario);
        let b = run(&scenario);
        prop_assert_eq!(a, b, "mobile runs must be deterministic per seed");
    }
}

proptest! {
    // Heavier cases (three full runs each, some mobile); fewer of them.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sharded engine's contract over the generated-scenario space:
    /// `shards: Some(k)` is bit-identical for every `k ≥ 1` — including on
    /// mobile, live-routed scenarios, across topology families and schemes.
    /// (`Some(k)` vs the legacy `None` engine is deliberately *not* byte-
    /// comparable: the sharded engine consumes per-entity RNG streams.)
    #[test]
    fn prop_shard_counts_are_bit_identical(
        topo_pick in 0usize..3,
        scheme_pick in 0usize..4,
        seed in 1u64..32,
        mobile in any::<bool>(),
    ) {
        let mut base = spec(topo_pick, scheme_pick, seed);
        if mobile {
            base.mobility = MobilitySpec::Drift { max_speed_mps: 3.0 };
            base.route_refresh_ms = Some(20);
        }
        base.shards = Some(1);
        let reference = run(&base.materialise().expect("materialise"));
        for k in [2, 8] {
            let mut resharded = base.clone();
            resharded.shards = Some(k);
            prop_assert_eq!(
                &reference,
                &run(&resharded.materialise().expect("materialise")),
                "{} shards drifted from 1", k
            );
        }
    }
}
