//! Log-normal shadowing propagation, matching NS-2's `Shadowing` model that
//! the paper selects ("path loss exponent 5, shadowing deviation 8,
//! transmission power 281 mW").
//!
//! Received power over a link of length `d` is
//!
//! ```text
//! Pr(d) [dBm] = Pt − PL(d0) − 10·β·log10(d/d0) + X_σ,   X_σ ~ N(0, σ²)
//! ```
//!
//! with reference distance `d0 = 1 m` and `PL(d0)` the free-space loss at
//! 2.4 GHz. The Gaussian term is drawn **independently per frame and per
//! receiver**, which is exactly the property opportunistic routing exploits:
//! losses at different forwarders are uncorrelated.

use wmn_sim::StreamRng;

use crate::math::normal_cdf;

/// Log-normal shadowing model parameters.
#[derive(Clone, Copy, Debug)]
pub struct Shadowing {
    /// Path-loss exponent β (paper: 5).
    pub path_loss_exponent: f64,
    /// Shadowing deviation σ in dB (paper: 8).
    pub sigma_db: f64,
    /// Reference distance d0 in metres (1 m).
    pub reference_distance: f64,
    /// Free-space path loss at the reference distance, dB.
    pub pl_at_reference_db: f64,
}

impl Shadowing {
    /// The paper's parameters: β = 5, σ = 8 dB, d0 = 1 m, 2.4 GHz reference
    /// loss ≈ 40.05 dB.
    pub fn paper() -> Self {
        Shadowing {
            path_loss_exponent: 5.0,
            sigma_db: 8.0,
            reference_distance: 1.0,
            // 20·log10(4π·d0/λ) with λ = c/2.4 GHz ≈ 0.125 m.
            pl_at_reference_db: 40.05,
        }
    }

    /// Mean received power (dBm) at distance `metres` for transmit power
    /// `tx_dbm`, i.e. the deterministic part of the model.
    ///
    /// Distances below the reference distance are clamped to it.
    pub fn mean_rx_dbm(&self, tx_dbm: f64, metres: f64) -> f64 {
        let d = metres.max(self.reference_distance);
        tx_dbm
            - self.pl_at_reference_db
            - 10.0 * self.path_loss_exponent * (d / self.reference_distance).log10()
    }

    /// One random received-power sample (dBm): the mean plus a fresh
    /// Gaussian shadowing term.
    pub fn sample_rx_dbm(&self, tx_dbm: f64, metres: f64, rng: &mut StreamRng) -> f64 {
        self.mean_rx_dbm(tx_dbm, metres) + self.sigma_db * rng.standard_normal()
    }

    /// Analytic probability that a sample exceeds `threshold_dbm`:
    /// Φ((mean − threshold)/σ).
    pub fn success_probability(&self, tx_dbm: f64, metres: f64, threshold_dbm: f64) -> f64 {
        let margin = self.mean_rx_dbm(tx_dbm, metres) - threshold_dbm;
        normal_cdf(margin / self.sigma_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TX: f64 = 24.487; // 281 mW

    #[test]
    fn mean_decays_50db_per_decade() {
        let s = Shadowing::paper();
        let at_1 = s.mean_rx_dbm(TX, 1.0);
        let at_10 = s.mean_rx_dbm(TX, 10.0);
        assert!((at_1 - at_10 - 50.0).abs() < 1e-9, "β=5 → 50 dB per decade");
    }

    #[test]
    fn sub_reference_distances_clamp() {
        let s = Shadowing::paper();
        assert_eq!(s.mean_rx_dbm(TX, 0.0), s.mean_rx_dbm(TX, 1.0));
        assert_eq!(s.mean_rx_dbm(TX, 0.5), s.mean_rx_dbm(TX, 1.0));
    }

    #[test]
    fn success_probability_half_at_threshold() {
        let s = Shadowing::paper();
        let d = 10.0;
        let thresh = s.mean_rx_dbm(TX, d);
        assert!((s.success_probability(TX, d, thresh) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empirical_matches_analytic() {
        let s = Shadowing::paper();
        let mut rng = StreamRng::derive(3, "shadow");
        let d = 8.0;
        let thresh = -65.0;
        let n = 50_000;
        let hits =
            (0..n).filter(|_| s.sample_rx_dbm(TX, d, &mut rng) >= thresh).count() as f64 / n as f64;
        let analytic = s.success_probability(TX, d, thresh);
        assert!((hits - analytic).abs() < 0.01, "empirical {hits} vs analytic {analytic}");
    }

    proptest! {
        /// Delivery probability is monotone non-increasing with distance.
        #[test]
        fn prop_monotone_in_distance(d1 in 1.0f64..60.0, d2 in 1.0f64..60.0) {
            let s = Shadowing::paper();
            let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(
                s.success_probability(TX, near, -65.0) + 1e-12
                    >= s.success_probability(TX, far, -65.0)
            );
        }

        /// Lowering the threshold can only help.
        #[test]
        fn prop_monotone_in_threshold(d in 1.0f64..60.0) {
            let s = Shadowing::paper();
            prop_assert!(
                s.success_probability(TX, d, -78.0) + 1e-12
                    >= s.success_probability(TX, d, -65.0)
            );
        }
    }
}
