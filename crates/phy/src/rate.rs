//! PHY data rates and frame airtime arithmetic.
//!
//! Table I of the paper fixes a 216 Mbps data rate with a 54 Mbps basic
//! (control) rate for most experiments, and 6/6 Mbps for the low-rate
//! Wigle/Roofnet and VoIP experiments. Airtime is `PHY header + bits/rate`;
//! the 20 µs PHY header is rate-independent.

use std::fmt;

use wmn_sim::SimDuration;

/// A physical-layer transmission rate.
///
/// # Example
///
/// ```
/// use wmn_phy::Rate;
/// let r = Rate::mbps(54.0);
/// assert_eq!(r.as_mbps(), 54.0);
/// // 14 bytes at 54 Mbps is about 2.07 us of payload airtime.
/// let t = r.payload_airtime(14);
/// assert!((t.as_micros_f64() - 2.074).abs() < 0.01);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Rate {
    mbps: f64,
}

impl Rate {
    /// Creates a rate from megabits per second.
    ///
    /// # Panics
    ///
    /// Panics unless `mbps` is strictly positive and finite.
    pub fn mbps(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps > 0.0, "invalid rate: {mbps} Mbps");
        Rate { mbps }
    }

    /// The rate in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.mbps
    }

    /// Time to serialise `bytes` of payload at this rate (PHY header **not**
    /// included).
    pub fn payload_airtime(self, bytes: u32) -> SimDuration {
        let bits = f64::from(bytes) * 8.0;
        SimDuration::from_micros_f64(bits / self.mbps)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Mbps", self.mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn payload_airtime_at_216() {
        // 1000 B = 8000 bits at 216 Mbps = 37.04 us.
        let t = Rate::mbps(216.0).payload_airtime(1000);
        assert!((t.as_micros_f64() - 37.037).abs() < 0.01);
    }

    #[test]
    fn payload_airtime_at_6() {
        // 1000 B at 6 Mbps = 1333.3 us.
        let t = Rate::mbps(6.0).payload_airtime(1000);
        assert!((t.as_micros_f64() - 1333.33).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_panics() {
        let _ = Rate::mbps(0.0);
    }

    proptest! {
        /// Airtime is monotone in size and inverse-monotone in rate.
        #[test]
        fn prop_airtime_monotone(bytes in 1u32..100_000, mbps in 1.0f64..1000.0) {
            let r = Rate::mbps(mbps);
            prop_assert!(r.payload_airtime(bytes + 1) >= r.payload_airtime(bytes));
            let faster = Rate::mbps(mbps * 2.0);
            prop_assert!(faster.payload_airtime(bytes) <= r.payload_airtime(bytes));
        }
    }
}
