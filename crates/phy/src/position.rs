//! Node placement on a 2-D plane (the paper's topologies are planar maps:
//! Fig. 1's eight stations, the Wigle AP map, the Roofnet GPS coordinates).

use std::fmt;

/// A station's position, in metres.
///
/// # Example
///
/// ```
/// use wmn_phy::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Creates a position from metre coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_zero_to_self() {
        let p = Position::new(2.5, -1.0);
        assert_eq!(p.distance_to(p), 0.0);
    }

    #[test]
    fn distance_345() {
        assert!((Position::new(1.0, 1.0).distance_to(Position::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    proptest! {
        /// Distance is symmetric and satisfies the triangle inequality.
        #[test]
        fn prop_metric(ax in -100.0..100.0, ay in -100.0..100.0,
                       bx in -100.0..100.0, by in -100.0..100.0,
                       cx in -100.0..100.0, cy in -100.0..100.0) {
            let (a, b, c) = (Position::new(ax, ay), Position::new(bx, by), Position::new(cx, cy));
            prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
            prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        }
    }
}
