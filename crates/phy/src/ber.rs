//! The i.i.d. bit-error model.
//!
//! The paper: "We use a widely used independent and identically distributed
//! (i.i.d.) BER model … a BER of 10⁻⁵ and 10⁻⁶ to simulate a 'noisy' and a
//! 'clear' channel state."
//!
//! Under aggregation (AFR, RIPPLE-16) each subframe carries its own CRC, so
//! bit errors corrupt *individual subframes* while the rest of the frame
//! survives — the property that makes partial retransmission effective. The
//! model is applied per receiver, independently.

use wmn_sim::StreamRng;

/// I.i.d. bit-error channel with a fixed bit error rate.
///
/// # Example
///
/// ```
/// use wmn_phy::BerModel;
/// let clear = BerModel::new(1e-6);
/// // A 1000-byte unit survives the clear channel ~99.2 % of the time.
/// let p = clear.unit_success_probability(1000);
/// assert!((p - 0.992).abs() < 0.001);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BerModel {
    ber: f64,
}

impl BerModel {
    /// Creates a model with the given bit error rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ber < 1`.
    pub fn new(ber: f64) -> Self {
        assert!((0.0..1.0).contains(&ber), "invalid BER: {ber}");
        BerModel { ber }
    }

    /// The configured bit error rate.
    pub fn ber(&self) -> f64 {
        self.ber
    }

    /// Probability that a `bytes`-long protected unit (header or subframe)
    /// arrives with no bit errors: `(1 − BER)^(8·bytes)`.
    pub fn unit_success_probability(&self, bytes: u32) -> f64 {
        let bits = f64::from(bytes) * 8.0;
        // ln-space for numerical robustness at large sizes.
        (bits * (1.0 - self.ber).ln()).exp()
    }

    /// Randomly decides whether a `bytes`-long protected unit survives.
    ///
    /// Exactly one RNG draw per call. The decode seam
    /// (`wmn-netsim`'s `stack::decode`) relies on this: it draws header
    /// first, then each subframe in frame order, and decides clean-vs-copy
    /// only *after* the draws — so the zero-copy fast path consumes the
    /// stream in precisely the order the old mutate-as-you-go loop did.
    pub fn unit_survives(&self, bytes: u32, rng: &mut StreamRng) -> bool {
        rng.chance(self.unit_success_probability(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_ber_never_corrupts() {
        let m = BerModel::new(0.0);
        assert_eq!(m.unit_success_probability(100_000), 1.0);
        let mut rng = StreamRng::derive(1, "ber");
        assert!((0..100).all(|_| m.unit_survives(1500, &mut rng)));
    }

    #[test]
    fn paper_channel_states() {
        // 1000-byte packet = 8000 bits.
        let noisy = BerModel::new(1e-5).unit_success_probability(1000);
        let clear = BerModel::new(1e-6).unit_success_probability(1000);
        assert!((noisy - 0.9231).abs() < 1e-3, "noisy ≈ 7.7 % loss, got {noisy}");
        assert!((clear - 0.9920).abs() < 1e-3, "clear ≈ 0.8 % loss, got {clear}");
    }

    #[test]
    fn empirical_matches_analytic() {
        let m = BerModel::new(1e-5);
        let mut rng = StreamRng::derive(5, "ber-emp");
        let n = 40_000;
        let ok = (0..n).filter(|_| m.unit_survives(1000, &mut rng)).count() as f64 / n as f64;
        assert!((ok - m.unit_success_probability(1000)).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid BER")]
    fn rejects_ber_of_one() {
        let _ = BerModel::new(1.0);
    }

    proptest! {
        /// Success probability is monotone decreasing in unit size.
        #[test]
        fn prop_monotone_in_size(bytes in 1u32..10_000) {
            let m = BerModel::new(1e-5);
            prop_assert!(
                m.unit_success_probability(bytes) >= m.unit_success_probability(bytes + 1)
            );
        }

        /// Success probability is monotone decreasing in BER.
        #[test]
        fn prop_monotone_in_ber(exp in 3u32..9) {
            let high = BerModel::new(10f64.powi(-(exp as i32)));
            let low = BerModel::new(10f64.powi(-(exp as i32 + 1)));
            prop_assert!(low.unit_success_probability(1000) >= high.unit_success_probability(1000));
        }
    }
}
