//! The shared wireless medium and the per-node reception state machine.
//!
//! Modelling follows NS-2's 802.11 PHY, which the paper relies
//! on for its collision results (Section IV-B):
//!
//! * Each transmission reaches each other station with power
//!   `Pt − PL(d) + X_σ` (fresh shadowing draw per frame *and* per receiver).
//! * Power ≥ `rx_thresh` → the frame is **decodable**; power ≥ `cs_thresh`
//!   → it is **sensed** (contributes carrier sense / busy). Below carrier
//!   sense the transmission is invisible and does not interfere.
//! * **First-lock capture** (NS-2's `CPThresh`, 10 dB): when arrivals
//!   overlap, the reception in progress survives if it is at least
//!   [`CAPTURE_THRESHOLD_DB`] stronger than the interferer; otherwise both
//!   are corrupted. A later arrival is never decodable itself while another
//!   reception is in progress, and a station that is transmitting cannot
//!   receive (half-duplex). Hidden-terminal collisions arise naturally.
//!
//! [`Medium`] computes the per-receiver reception plan for a transmission;
//! [`Receiver`] tracks overlapping arrivals at one station and reports frame
//! outcomes and channel busy/idle transitions. The simulation runner (crate
//! `wmn-netsim`) owns one `Receiver` per node and drives both from the event
//! queue.

use wmn_sim::{NodeId, SimDuration, SimTime, StreamRng};

/// NS-2's capture threshold (`CPThresh`): a reception in progress survives
/// interference that is at least this many dB weaker.
pub const CAPTURE_THRESHOLD_DB: f64 = 10.0;

use crate::params::PhyParams;
use crate::position::Position;

/// How a single planned arrival will be perceived by one receiver.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RxPlan {
    /// The receiving station.
    pub to: NodeId,
    /// Propagation delay from the transmitter.
    pub delay: SimDuration,
    /// Received power in dBm (already includes the shadowing draw).
    pub power_dbm: f64,
    /// Whether the arrival is strong enough to decode.
    pub decodable: bool,
}

/// Build-time classification of one directed station pair, derived from the
/// pair's mean received power and the hard bound on a Box–Muller shadowing
/// excursion (see [`wmn_sim::StreamRng::standard_normal`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkClass {
    /// Even the largest possible shadowing excursion leaves the pair below
    /// carrier sense: the transmission is invisible there. The planner still
    /// consumes the pair's shadowing draws so the stream stays bit-identical
    /// to a full sample.
    NeverSensed,
    /// The pair's fate depends on the per-frame draw: sample, then compare
    /// against the carrier-sense and receive thresholds.
    Sampled,
    /// Even the most negative possible excursion stays at or above the
    /// receive threshold: every frame is sensed and decodable (the sample is
    /// still taken — its value feeds the capture comparison).
    AlwaysDecodable,
}

/// Precomputed state of one directed station pair: everything about the
/// deterministic part of the propagation model, so the per-transmission work
/// reduces to one shadowing draw and a threshold compare.
#[derive(Clone, Copy, Debug)]
struct LinkState {
    /// Distance in metres.
    distance: f64,
    /// Mean received power in dBm (transmit power minus mean path loss).
    mean_rx_dbm: f64,
    /// Propagation delay over the link.
    delay: SimDuration,
    /// Threshold classification of the pair.
    class: LinkClass,
}

/// The shared wireless medium: node positions plus the propagation model.
///
/// Positions never move mid-run, so construction materialises a flat n×n
/// link-state matrix (distance, mean received power, propagation delay, and
/// a threshold classification per directed pair). [`Medium::plan_transmission`]
/// is then a row walk that adds one fresh shadowing draw per pair instead of
/// re-deriving the geometry and path loss on every transmission.
///
/// # Example
///
/// ```
/// use wmn_phy::{Medium, PhyParams, Position};
/// use wmn_sim::{NodeId, StreamRng};
///
/// let medium = Medium::new(
///     PhyParams::paper_216(),
///     vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
/// );
/// let mut rng = StreamRng::derive(1, "medium");
/// let plans = medium.plan_transmission(NodeId::new(0), &mut rng);
/// // At 5 m the neighbour almost always senses the frame.
/// assert!(plans.len() <= 1);
/// ```
#[derive(Debug)]
pub struct Medium {
    params: PhyParams,
    positions: Vec<Position>,
    /// Flat row-major n×n matrix; entry `[from · n + to]` describes the
    /// directed pair. The diagonal is filled (zero distance) but never read
    /// by the planner.
    links: Vec<LinkState>,
}

/// The largest |z| the Box–Muller transform over a 53-bit uniform can emit
/// (`u1 ≥ 2⁻⁵³` ⇒ `|z| ≤ sqrt(-2·ln 2⁻⁵³) ≈ 8.5716`), inflated by a small
/// guard so floating-point rounding in either direction cannot make the
/// build-time classification unsound.
fn max_shadowing_sigmas() -> f64 {
    (-2.0 * (1.0 / (1u64 << 53) as f64).ln()).sqrt() * (1.0 + 1e-9) + 1e-9
}

/// Computes the link state of one directed pair. This is the **single**
/// place the deterministic part of the propagation model is evaluated:
/// construction and the incremental [`Medium::update_node_position`] refresh
/// both call it, so a refreshed matrix is bit-identical to a rebuilt one.
fn link_state(params: &PhyParams, from: Position, to: Position) -> LinkState {
    let z_max = max_shadowing_sigmas();
    let sigma = params.shadowing.sigma_db.abs();
    let d = from.distance_to(to);
    let mean = params.shadowing.mean_rx_dbm(params.tx_power_dbm, d);
    // AlwaysDecodable must clear *both* thresholds at the most
    // negative possible excursion: `PhyParams` fields are public,
    // so cs_thresh above rx_thresh is a legal (if odd)
    // configuration, and the naive path would still drop
    // sub-carrier-sense samples there.
    let min_power = mean - sigma * z_max;
    let class = if mean + sigma * z_max < params.cs_thresh_dbm {
        LinkClass::NeverSensed
    } else if min_power >= params.rx_thresh_dbm && min_power >= params.cs_thresh_dbm {
        LinkClass::AlwaysDecodable
    } else {
        LinkClass::Sampled
    };
    LinkState { distance: d, mean_rx_dbm: mean, delay: params.propagation_delay(d), class }
}

impl Medium {
    /// Creates a medium over the given station placement, precomputing the
    /// per-pair link-state matrix (O(n²) once, instead of per transmission).
    pub fn new(params: PhyParams, positions: Vec<Position>) -> Self {
        let n = positions.len();
        let mut links = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                links.push(link_state(&params, positions[from], positions[to]));
            }
        }
        Medium { params, positions, links }
    }

    /// Moves one station and refreshes only the link-state entries the move
    /// can affect: the node's row (it as transmitter) and its column (it as
    /// receiver) — `2n − 1` entries instead of the full n² rebuild, which is
    /// what makes per-tick mobility affordable on large placements.
    ///
    /// The refreshed entries are computed by the same code path as
    /// construction, so after any sequence of updates the matrix is
    /// bit-identical to `Medium::new` over the current placement (pinned by
    /// this module's tests). No RNG is touched: link state is the
    /// deterministic part of the model, and per-frame shadowing draws keep
    /// their stream positions regardless of position changes.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn update_node_position(&mut self, node: NodeId, position: Position) {
        let n = self.positions.len();
        assert!(node.index() < n, "node id out of range");
        self.positions[node.index()] = position;
        for other in 0..n {
            self.links[node.index() * n + other] =
                link_state(&self.params, position, self.positions[other]);
            self.links[other * n + node.index()] =
                link_state(&self.params, self.positions[other], position);
        }
    }

    /// Number of stations.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// The placement of a station.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// The PHY parameter set this medium was built with.
    pub fn params(&self) -> &PhyParams {
        &self.params
    }

    /// The *current* placement of every station, in node-id order.
    ///
    /// Under mobility this reflects every [`Medium::update_node_position`]
    /// applied so far — it is the live view routing-refresh passes rebuild
    /// their link graphs from.
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Clean-frame delivery probability over the directed pair, evaluated
    /// from the *cached* link distance ([`PhyParams::link_delivery_probability`]).
    ///
    /// Because the cached distance comes from the same `distance_to`
    /// computation as scenario build, this is bit-identical to evaluating the
    /// analytic model over the current placement directly — the property that
    /// makes a route refresh over an unmoved topology a behavioural no-op.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn link_delivery_probability(&self, from: NodeId, to: NodeId) -> f64 {
        self.params.link_delivery_probability(self.link(from, to).distance)
    }

    /// Distance between two stations in metres (precomputed).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.link(a, b).distance
    }

    /// Mean received power (dBm) over the directed pair — the deterministic
    /// part of the shadowing model, precomputed at construction.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn mean_rx_dbm(&self, from: NodeId, to: NodeId) -> f64 {
        self.link(from, to).mean_rx_dbm
    }

    /// The build-time threshold classification of the directed pair.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn link_class(&self, from: NodeId, to: NodeId) -> LinkClass {
        self.link(from, to).class
    }

    fn link(&self, from: NodeId, to: NodeId) -> &LinkState {
        assert!(to.index() < self.positions.len(), "node id out of range");
        &self.links[from.index() * self.positions.len() + to.index()]
    }

    /// The minimum propagation delay over directed pairs whose endpoints
    /// lie in *different* groups of `group_of` (one group id per station),
    /// restricted to sensed pairs (link class other than
    /// [`LinkClass::NeverSensed`]).
    ///
    /// This is the conservative lookahead bound of a sharded event loop: a
    /// transmission inside one group cannot cause an event in another group
    /// sooner than this delay after its emission, so every shard may freely
    /// process events up to (but not at) `earliest pending + lookahead`.
    /// `None` means no cross-group pair is sensed at all — the groups are
    /// radio-isolated and any horizon is safe.
    ///
    /// Walks the cached link-state matrix (no trigonometry, no RNG); under
    /// mobility the bound is only valid until the next position update, so
    /// callers re-query after each mobility barrier.
    ///
    /// # Panics
    ///
    /// Panics unless `group_of` has exactly one entry per station.
    pub fn min_cross_group_delay(&self, group_of: &[u32]) -> Option<SimDuration> {
        let n = self.positions.len();
        assert_eq!(group_of.len(), n, "one group id per station");
        let mut min: Option<SimDuration> = None;
        for from in 0..n {
            let row = &self.links[from * n..(from + 1) * n];
            for (to, link) in row.iter().enumerate() {
                if group_of[from] == group_of[to] || link.class == LinkClass::NeverSensed {
                    continue;
                }
                min = Some(min.map_or(link.delay, |m| m.min(link.delay)));
            }
        }
        min
    }

    /// Computes, for one transmission by `from`, the set of stations that
    /// will perceive it (power at or above carrier sense), with fresh
    /// independent shadowing draws. Stations below carrier sense are omitted
    /// — they neither decode nor defer.
    ///
    /// Allocates a fresh vector per call; hot loops should hold a scratch
    /// buffer and use [`Medium::plan_transmission_into`] instead.
    pub fn plan_transmission(&self, from: NodeId, rng: &mut StreamRng) -> Vec<RxPlan> {
        let mut plans = Vec::new();
        self.plan_transmission_into(from, rng, &mut plans);
        plans
    }

    /// Like [`Medium::plan_transmission`], but writes into a caller-owned
    /// buffer (cleared first) so a simulation loop performs zero allocations
    /// per transmission once the buffer has grown to the neighbourhood size.
    ///
    /// The RNG stream is consumed in the identical order to the original
    /// per-call computation — one [shadowing draw's worth] per other station,
    /// in station-index order — so results are bit-for-bit reproducible
    /// across both implementations and any future ones held to the same
    /// contract.
    ///
    /// [shadowing draw's worth]: wmn_sim::StreamRng::skip_standard_normal
    pub fn plan_transmission_into(
        &self,
        from: NodeId,
        rng: &mut StreamRng,
        plans: &mut Vec<RxPlan>,
    ) {
        plans.clear();
        let p = &self.params;
        let n = self.positions.len();
        let row = &self.links[from.index() * n..(from.index() + 1) * n];
        for (idx, link) in row.iter().enumerate() {
            if idx == from.index() {
                continue;
            }
            match link.class {
                LinkClass::NeverSensed => {
                    // Invisible regardless of the draw: consume the pair's
                    // stream share without the transcendental math.
                    rng.skip_standard_normal();
                }
                LinkClass::Sampled => {
                    let power = link.mean_rx_dbm + p.shadowing.sigma_db * rng.standard_normal();
                    if power < p.cs_thresh_dbm {
                        continue;
                    }
                    plans.push(RxPlan {
                        to: NodeId::new(idx as u32),
                        delay: link.delay,
                        power_dbm: power,
                        decodable: power >= p.rx_thresh_dbm,
                    });
                }
                LinkClass::AlwaysDecodable => {
                    let power = link.mean_rx_dbm + p.shadowing.sigma_db * rng.standard_normal();
                    plans.push(RxPlan {
                        to: NodeId::new(idx as u32),
                        delay: link.delay,
                        power_dbm: power,
                        decodable: true,
                    });
                }
            }
        }
    }

    /// The raw link-state matrix, for tests pinning the incremental refresh
    /// bit-identical to full reconstruction.
    #[cfg(test)]
    fn links(&self) -> &[LinkState] {
        &self.links
    }

    /// The pre-refactor per-call computation, kept as the oracle the cached
    /// planner is pinned against: re-derives distance, mean path loss, and
    /// thresholds for every pair on every call.
    #[cfg(test)]
    fn plan_transmission_naive(&self, from: NodeId, rng: &mut StreamRng) -> Vec<RxPlan> {
        let p = &self.params;
        let mut plans = Vec::new();
        for idx in 0..self.positions.len() {
            if idx == from.index() {
                continue;
            }
            let to = NodeId::new(idx as u32);
            let d = self.positions[from.index()].distance_to(self.positions[to.index()]);
            let power = p.shadowing.sample_rx_dbm(p.tx_power_dbm, d, rng);
            if power < p.cs_thresh_dbm {
                continue;
            }
            plans.push(RxPlan {
                to,
                delay: p.propagation_delay(d),
                power_dbm: power,
                decodable: power >= p.rx_thresh_dbm,
            });
        }
        plans
    }
}

/// Outcome of one arrival at one receiver, reported when the arrival ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalOutcome {
    /// Decodable and never overlapped by another sensed arrival or by a
    /// local transmission: the frame reaches the MAC (subject to bit
    /// errors, applied by the caller).
    Clean,
    /// Sensed but corrupted by overlap / local transmission, or simply too
    /// weak to decode. Nothing reaches the MAC.
    Lost,
}

/// Channel busy/idle transition triggered by an arrival or local TX change.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusyTransition {
    /// The channel just became busy at this station.
    BecameBusy,
    /// The channel just became idle at this station.
    BecameIdle,
}

#[derive(Debug)]
struct ActiveArrival {
    id: u64,
    decodable: bool,
    corrupted: bool,
    power_dbm: f64,
}

/// Per-station reception state machine: overlapping sensed arrivals, local
/// transmission state, and the busy/idle signal the MAC consumes.
///
/// All arrivals passed in are sensed by construction (`Medium` filters out
/// sub-carrier-sense receptions).
#[derive(Debug)]
pub struct Receiver {
    transmitting: bool,
    arrivals: Vec<ActiveArrival>,
    idle_since: SimTime,
}

impl Receiver {
    /// Creates a receiver whose channel has been idle since time zero.
    pub fn new() -> Self {
        Receiver { transmitting: false, arrivals: Vec::new(), idle_since: SimTime::ZERO }
    }

    /// Whether the channel currently appears busy at this station (a sensed
    /// arrival in progress, or a local transmission).
    pub fn is_busy(&self) -> bool {
        self.transmitting || !self.arrivals.is_empty()
    }

    /// The instant the channel last became idle. Meaningful only while
    /// [`Receiver::is_busy`] is false.
    pub fn idle_since(&self) -> SimTime {
        self.idle_since
    }

    /// Registers the start of a sensed arrival.
    ///
    /// An arrival that begins while another reception is in progress is
    /// itself lost; the reception in progress survives only if it is at
    /// least [`CAPTURE_THRESHOLD_DB`] stronger than the newcomer (NS-2's
    /// capture rule). Starting while the station transmits corrupts the
    /// arrival.
    pub fn on_arrival_start(
        &mut self,
        id: u64,
        decodable: bool,
        power_dbm: f64,
        _now: SimTime,
    ) -> Option<BusyTransition> {
        let was_busy = self.is_busy();
        let mut corrupted = self.transmitting;
        if !self.arrivals.is_empty() {
            // The receiver is locked onto an earlier arrival: this one is
            // lost, and it corrupts any ongoing reception it is too close
            // to in power.
            corrupted = true;
            for a in &mut self.arrivals {
                if a.power_dbm - power_dbm < CAPTURE_THRESHOLD_DB {
                    a.corrupted = true;
                }
            }
        }
        self.arrivals.push(ActiveArrival { id, decodable, corrupted, power_dbm });
        if was_busy {
            None
        } else {
            Some(BusyTransition::BecameBusy)
        }
    }

    /// Registers the end of a previously started arrival and reports its
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never started (a simulation-runner bug).
    pub fn on_arrival_end(
        &mut self,
        id: u64,
        now: SimTime,
    ) -> (ArrivalOutcome, Option<BusyTransition>) {
        let idx = self
            .arrivals
            .iter()
            .position(|a| a.id == id)
            .expect("arrival end without matching start");
        let arrival = self.arrivals.swap_remove(idx);
        let outcome = if arrival.decodable && !arrival.corrupted && !self.transmitting {
            ArrivalOutcome::Clean
        } else {
            ArrivalOutcome::Lost
        };
        let transition = if !self.is_busy() {
            self.idle_since = now;
            Some(BusyTransition::BecameIdle)
        } else {
            None
        };
        (outcome, transition)
    }

    /// Registers the start of a local transmission. Any arrival in progress
    /// is corrupted (half-duplex).
    pub fn on_tx_start(&mut self, _now: SimTime) -> Option<BusyTransition> {
        let was_busy = self.is_busy();
        self.transmitting = true;
        for a in &mut self.arrivals {
            a.corrupted = true;
        }
        if was_busy {
            None
        } else {
            Some(BusyTransition::BecameBusy)
        }
    }

    /// Registers the end of the local transmission.
    ///
    /// # Panics
    ///
    /// Panics if no transmission was in progress.
    pub fn on_tx_end(&mut self, now: SimTime) -> Option<BusyTransition> {
        assert!(self.transmitting, "tx end without tx start");
        self.transmitting = false;
        if !self.is_busy() {
            self.idle_since = now;
            Some(BusyTransition::BecameIdle)
        } else {
            None
        }
    }
}

impl Default for Receiver {
    fn default() -> Self {
        Receiver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn lone_decodable_arrival_is_clean() {
        let mut rx = Receiver::new();
        assert_eq!(rx.on_arrival_start(1, true, -50.0, t(0)), Some(BusyTransition::BecameBusy));
        assert!(rx.is_busy());
        let (outcome, trans) = rx.on_arrival_end(1, t(50));
        assert_eq!(outcome, ArrivalOutcome::Clean);
        assert_eq!(trans, Some(BusyTransition::BecameIdle));
        assert_eq!(rx.idle_since(), t(50));
    }

    #[test]
    fn sensed_but_weak_arrival_is_lost() {
        let mut rx = Receiver::new();
        rx.on_arrival_start(1, false, -70.0, t(0));
        let (outcome, _) = rx.on_arrival_end(1, t(10));
        assert_eq!(outcome, ArrivalOutcome::Lost);
    }

    #[test]
    fn comparable_power_overlap_corrupts_both() {
        let mut rx = Receiver::new();
        rx.on_arrival_start(1, true, -60.0, t(0));
        assert_eq!(rx.on_arrival_start(2, true, -62.0, t(5)), None, "already busy");
        let (o1, tr1) = rx.on_arrival_end(1, t(20));
        assert_eq!(o1, ArrivalOutcome::Lost);
        assert_eq!(tr1, None, "second arrival still active");
        let (o2, tr2) = rx.on_arrival_end(2, t(30));
        assert_eq!(o2, ArrivalOutcome::Lost);
        assert_eq!(tr2, Some(BusyTransition::BecameIdle));
    }

    #[test]
    fn late_overlap_corrupts_earlier_arrival() {
        // Hidden-terminal case: the earlier frame is nearly done when a
        // comparable-power collider starts — it must still be corrupted.
        let mut rx = Receiver::new();
        rx.on_arrival_start(1, true, -60.0, t(0));
        rx.on_arrival_start(2, false, -63.0, t(49));
        let (o1, _) = rx.on_arrival_end(1, t(50));
        assert_eq!(o1, ArrivalOutcome::Lost);
    }

    #[test]
    fn strong_reception_captures_over_weak_interference() {
        // NS-2 capture: a 24 dB stronger reception in progress survives a
        // weak hidden-terminal arrival; the weak arrival is lost.
        let mut rx = Receiver::new();
        rx.on_arrival_start(1, true, -50.0, t(0));
        rx.on_arrival_start(2, true, -74.0, t(10));
        let (o1, _) = rx.on_arrival_end(1, t(50));
        assert_eq!(o1, ArrivalOutcome::Clean, "captured reception survives");
        let (o2, _) = rx.on_arrival_end(2, t(60));
        assert_eq!(o2, ArrivalOutcome::Lost, "the latecomer is always lost");
    }

    #[test]
    fn strong_latecomer_destroys_weak_reception() {
        // The locked-on weak frame cannot survive a much stronger collider,
        // and the collider itself is not decodable either (no re-locking).
        let mut rx = Receiver::new();
        rx.on_arrival_start(1, true, -74.0, t(0));
        rx.on_arrival_start(2, true, -50.0, t(10));
        let (o1, _) = rx.on_arrival_end(1, t(50));
        assert_eq!(o1, ArrivalOutcome::Lost);
        let (o2, _) = rx.on_arrival_end(2, t(60));
        assert_eq!(o2, ArrivalOutcome::Lost);
    }

    #[test]
    fn transmission_corrupts_reception() {
        let mut rx = Receiver::new();
        rx.on_arrival_start(1, true, -50.0, t(0));
        assert_eq!(rx.on_tx_start(t(5)), None);
        let (o, _) = rx.on_arrival_end(1, t(20));
        assert_eq!(o, ArrivalOutcome::Lost);
        assert!(rx.is_busy(), "still transmitting");
        assert_eq!(rx.on_tx_end(t(40)), Some(BusyTransition::BecameIdle));
    }

    #[test]
    fn arrival_during_tx_is_lost() {
        let mut rx = Receiver::new();
        assert_eq!(rx.on_tx_start(t(0)), Some(BusyTransition::BecameBusy));
        rx.on_arrival_start(1, true, -50.0, t(5));
        rx.on_tx_end(t(10));
        let (o, trans) = rx.on_arrival_end(1, t(20));
        assert_eq!(o, ArrivalOutcome::Lost);
        assert_eq!(trans, Some(BusyTransition::BecameIdle));
    }

    #[test]
    fn idle_since_tracks_last_transition() {
        let mut rx = Receiver::new();
        assert_eq!(rx.idle_since(), SimTime::ZERO);
        rx.on_arrival_start(1, true, -50.0, t(10));
        rx.on_arrival_end(1, t(60));
        assert_eq!(rx.idle_since(), t(60));
        assert!(!rx.is_busy());
    }

    #[test]
    #[should_panic(expected = "without matching start")]
    fn unknown_arrival_end_panics() {
        let mut rx = Receiver::new();
        let _ = rx.on_arrival_end(99, t(0));
    }

    #[test]
    fn medium_plans_exclude_transmitter_and_far_nodes() {
        use crate::params::PhyParams;
        let medium = Medium::new(
            PhyParams::paper_216(),
            vec![
                Position::new(0.0, 0.0),
                Position::new(5.0, 0.0),
                Position::new(1000.0, 0.0), // far outside carrier sense
            ],
        );
        let mut rng = StreamRng::derive(2, "plan");
        let mut neighbour_seen = 0;
        let mut far_seen = 0;
        for _ in 0..200 {
            for plan in medium.plan_transmission(NodeId::new(0), &mut rng) {
                assert_ne!(plan.to, NodeId::new(0), "never deliver to self");
                match plan.to.index() {
                    1 => neighbour_seen += 1,
                    2 => far_seen += 1,
                    _ => unreachable!(),
                }
            }
        }
        assert!(neighbour_seen > 190, "5 m neighbour almost always sensed");
        assert_eq!(far_seen, 0, "1 km station never sensed");
    }

    #[test]
    fn min_cross_group_delay_tracks_the_closest_sensed_pair() {
        use crate::params::PhyParams;
        let params = PhyParams::paper_216();
        // Groups: {0, 1} | {2} | {3}. Node 3 is radio-isolated at 1 km.
        let medium = Medium::new(
            params.clone(),
            vec![
                Position::new(0.0, 0.0),
                Position::new(5.0, 0.0),
                Position::new(35.0, 0.0),
                Position::new(1000.0, 0.0),
            ],
        );
        let groups = [0u32, 0, 1, 2];
        // The closest cross-group sensed pair is 1↔2 at 30 m; the 5 m pair
        // 0↔1 is intra-group and must not shrink the bound.
        assert_eq!(
            medium.min_cross_group_delay(&groups),
            Some(params.propagation_delay(30.0)),
            "lookahead must come from the closest *cross*-group sensed pair"
        );
        // One group: no cross pairs at all.
        assert_eq!(medium.min_cross_group_delay(&[0, 0, 0, 0]), None);
        // Only the isolated station across the cut: nothing is sensed.
        assert_eq!(medium.min_cross_group_delay(&[0, 0, 0, 1]), None);
    }

    #[test]
    fn medium_decodable_fraction_matches_analytic() {
        use crate::params::PhyParams;
        let params = PhyParams::paper_216();
        let analytic = params.link_delivery_probability(10.0);
        let medium = Medium::new(params, vec![Position::new(0.0, 0.0), Position::new(10.0, 0.0)]);
        let mut rng = StreamRng::derive(9, "frac");
        let n = 20_000;
        let decodable = (0..n)
            .filter(|_| {
                medium.plan_transmission(NodeId::new(0), &mut rng).iter().any(|p| p.decodable)
            })
            .count() as f64
            / n as f64;
        assert!(
            (decodable - analytic).abs() < 0.02,
            "empirical {decodable} vs analytic {analytic}"
        );
    }

    #[test]
    fn link_classification_matches_paper_regimes() {
        use crate::params::PhyParams;
        let medium = Medium::new(
            PhyParams::paper_216(),
            vec![
                Position::new(0.0, 0.0),
                Position::new(5.0, 0.0),    // good link: draw-dependent
                Position::new(1000.0, 0.0), // far outside any possible excursion
            ],
        );
        let (n0, n1, n2) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert_eq!(medium.link_class(n0, n1), LinkClass::Sampled);
        assert_eq!(medium.link_class(n0, n2), LinkClass::NeverSensed);
        assert_eq!(medium.link_class(n2, n0), LinkClass::NeverSensed, "symmetric geometry");
        // Paper-calibrated precomputed quantities survive the refactor.
        assert!((medium.distance(n0, n2) - 1000.0).abs() < 1e-9);
        assert!((medium.mean_rx_dbm(n0, n1) - (-50.51)).abs() < 0.1);
    }

    #[test]
    fn tight_shadowing_yields_always_decodable_links() {
        use crate::params::PhyParams;
        // With a near-deterministic channel (σ = 0.5 dB) a 5 m link's worst
        // possible draw still clears the −65 dBm receive threshold.
        let mut params = PhyParams::paper_216();
        params.shadowing.sigma_db = 0.5;
        let medium = Medium::new(params, vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)]);
        assert_eq!(medium.link_class(NodeId::new(0), NodeId::new(1)), LinkClass::AlwaysDecodable);
        let mut rng = StreamRng::derive(4, "always");
        for _ in 0..100 {
            let plans = medium.plan_transmission(NodeId::new(0), &mut rng);
            assert_eq!(plans.len(), 1);
            assert!(plans[0].decodable);
        }
    }

    #[test]
    fn inverted_thresholds_still_match_naive() {
        use crate::params::PhyParams;
        // cs_thresh above rx_thresh is a legal (if odd) configuration of the
        // public parameter record: a sample can then decode-but-not-sense,
        // and the naive path drops it. AlwaysDecodable must not claim such
        // links. Regression for the classification requiring *both*
        // thresholds at the worst-case excursion.
        // At 13.5 m the mean (~ -72 dBm) sits between the thresholds: the
        // worst-case draw clears rx (-80) but samples straddle cs (-70) —
        // exactly the regime where the unsound shortcut diverged.
        let mut params = PhyParams::paper_216();
        params.rx_thresh_dbm = -80.0;
        params.cs_thresh_dbm = -70.0;
        params.shadowing.sigma_db = 0.5;
        let medium = Medium::new(params, vec![Position::new(0.0, 0.0), Position::new(13.5, 0.0)]);
        assert_eq!(
            medium.link_class(NodeId::new(0), NodeId::new(1)),
            LinkClass::Sampled,
            "must not shortcut past the higher carrier-sense threshold"
        );
        let mut rng_c = StreamRng::derive(6, "inv");
        let mut rng_n = StreamRng::derive(6, "inv");
        for _ in 0..500 {
            let cached = medium.plan_transmission(NodeId::new(0), &mut rng_c);
            let naive = medium.plan_transmission_naive(NodeId::new(0), &mut rng_n);
            assert_eq!(cached, naive);
        }
        assert_eq!(rng_c.next_u64(), rng_n.next_u64());
    }

    #[test]
    fn scratch_buffer_reuse_matches_fresh_allocation() {
        use crate::params::PhyParams;
        let medium = Medium::new(
            PhyParams::paper_216(),
            (0..8).map(|i| Position::new(f64::from(i) * 7.0, 0.0)).collect(),
        );
        let mut scratch = Vec::new();
        let mut rng_a = StreamRng::derive(5, "scratch");
        let mut rng_b = StreamRng::derive(5, "scratch");
        for round in 0..50 {
            let from = NodeId::new(round % 8);
            medium.plan_transmission_into(from, &mut rng_a, &mut scratch);
            assert_eq!(scratch, medium.plan_transmission(from, &mut rng_b), "round {round}");
        }
    }

    /// Asserts two media have bit-identical link-state matrices (floats
    /// compared via `to_bits`, classification exactly).
    fn assert_links_identical(a: &Medium, b: &Medium, context: &str) {
        assert_eq!(a.links().len(), b.links().len(), "{context}: matrix sizes differ");
        for (i, (x, y)) in a.links().iter().zip(b.links()).enumerate() {
            assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{context}: distance [{i}]");
            assert_eq!(
                x.mean_rx_dbm.to_bits(),
                y.mean_rx_dbm.to_bits(),
                "{context}: mean_rx_dbm [{i}]"
            );
            assert_eq!(x.delay, y.delay, "{context}: delay [{i}]");
            assert_eq!(x.class, y.class, "{context}: class [{i}]");
        }
    }

    #[test]
    fn incremental_refresh_matches_full_reconstruction() {
        use crate::params::PhyParams;
        let params = PhyParams::paper_216();
        let mut positions: Vec<Position> =
            (0..7).map(|i| Position::new(f64::from(i) * 60.0, f64::from(i % 3) * 45.0)).collect();
        let mut medium = Medium::new(params.clone(), positions.clone());
        // Walk one node across every propagation regime (near, mid, beyond
        // any possible excursion), moving other nodes in between so stale
        // rows would be caught.
        let moves: [(u32, f64, f64); 5] =
            [(2, 3.0, 4.0), (0, 500.0, 0.0), (2, 120.0, 80.0), (6, 1.0, 1.0), (3, 417.0, 0.0)];
        for (step, (node, x, y)) in moves.into_iter().enumerate() {
            let pos = Position::new(x, y);
            positions[node as usize] = pos;
            medium.update_node_position(NodeId::new(node), pos);
            let rebuilt = Medium::new(params.clone(), positions.clone());
            assert_links_identical(&medium, &rebuilt, &format!("move {step}"));
            // The planner sees the refreshed matrix exactly as a rebuild
            // would, including the RNG stream position afterwards.
            let mut rng_a = StreamRng::derive(step as u64, "refresh");
            let mut rng_b = StreamRng::derive(step as u64, "refresh");
            for from in 0..positions.len() {
                let from = NodeId::new(from as u32);
                assert_eq!(
                    medium.plan_transmission(from, &mut rng_a),
                    rebuilt.plan_transmission(from, &mut rng_b),
                );
            }
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    fn update_reclassifies_links_across_thresholds() {
        use crate::params::PhyParams;
        let mut medium = Medium::new(
            PhyParams::paper_216(),
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
        );
        let (n0, n1) = (NodeId::new(0), NodeId::new(1));
        assert_eq!(medium.link_class(n0, n1), LinkClass::Sampled);
        medium.update_node_position(n1, Position::new(1000.0, 0.0));
        assert_eq!(medium.link_class(n0, n1), LinkClass::NeverSensed);
        assert_eq!(medium.link_class(n1, n0), LinkClass::NeverSensed, "column refreshed too");
        assert!((medium.distance(n0, n1) - 1000.0).abs() < 1e-9);
        medium.update_node_position(n1, Position::new(5.0, 0.0));
        assert_eq!(medium.link_class(n0, n1), LinkClass::Sampled, "move back restores the link");
    }

    #[test]
    fn link_delivery_probability_tracks_moves_bit_for_bit() {
        use crate::params::PhyParams;
        let params = PhyParams::paper_216();
        let mut medium =
            Medium::new(params.clone(), vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)]);
        let (n0, n1) = (NodeId::new(0), NodeId::new(1));
        let analytic =
            |a: Position, b: Position| params.link_delivery_probability(a.distance_to(b));
        assert_eq!(
            medium.link_delivery_probability(n0, n1).to_bits(),
            analytic(Position::new(0.0, 0.0), Position::new(5.0, 0.0)).to_bits(),
            "cached distance must reproduce the analytic model exactly"
        );
        assert_eq!(medium.positions()[1], Position::new(5.0, 0.0));
        let moved = Position::new(3.0, 4.0);
        medium.update_node_position(n1, moved);
        assert_eq!(medium.positions()[1], moved, "positions() is the live view");
        assert_eq!(
            medium.link_delivery_probability(n1, n0).to_bits(),
            analytic(moved, Position::new(0.0, 0.0)).to_bits(),
            "refresh keeps the bit-identity"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_out_of_range_ids() {
        use crate::params::PhyParams;
        let mut medium = Medium::new(PhyParams::paper_216(), vec![Position::new(0.0, 0.0)]);
        medium.update_node_position(NodeId::new(3), Position::new(1.0, 1.0));
    }

    proptest! {
        /// After a random sequence of node moves, the incrementally
        /// refreshed matrix is bit-identical to a fresh construction over
        /// the final placement — the contract the mobility subsystem's
        /// determinism rests on.
        #[test]
        fn prop_incremental_refresh_matches_rebuild(
            coords in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 2..12),
            moves in proptest::collection::vec((0usize..12, 0.0f64..500.0, 0.0f64..500.0), 1..12),
        ) {
            use crate::params::PhyParams;
            let mut positions: Vec<Position> =
                coords.iter().map(|&(x, y)| Position::new(x, y)).collect();
            let mut medium = Medium::new(PhyParams::paper_216(), positions.clone());
            for &(pick, x, y) in &moves {
                let node = pick % positions.len();
                positions[node] = Position::new(x, y);
                medium.update_node_position(NodeId::new(node as u32), Position::new(x, y));
            }
            let rebuilt = Medium::new(PhyParams::paper_216(), positions);
            assert_links_identical(&medium, &rebuilt, "prop rebuild");
        }

        /// The cached planner is pinned bit-identical to the pre-refactor
        /// naive computation: same plans (floats compared exactly) AND the
        /// same RNG stream position afterwards, across random topologies,
        /// seeds, and transmitters. This is the determinism contract every
        /// future planner optimisation must keep.
        #[test]
        fn prop_cached_planner_matches_naive_bit_for_bit(
            seed in proptest::num::u64::ANY,
            coords in proptest::collection::vec((0.0f64..400.0, 0.0f64..400.0), 2..16),
            from_pick in 0usize..16,
        ) {
            use crate::params::PhyParams;
            let positions: Vec<Position> =
                coords.iter().map(|&(x, y)| Position::new(x, y)).collect();
            let from = NodeId::new((from_pick % positions.len()) as u32);
            let medium = Medium::new(PhyParams::paper_216(), positions);
            let mut rng_cached = StreamRng::derive(seed, "pin");
            let mut rng_naive = StreamRng::derive(seed, "pin");
            for _ in 0..8 {
                let cached = medium.plan_transmission(from, &mut rng_cached);
                let naive = medium.plan_transmission_naive(from, &mut rng_naive);
                prop_assert_eq!(cached.len(), naive.len());
                for (c, n) in cached.iter().zip(&naive) {
                    prop_assert_eq!(c.to, n.to);
                    prop_assert_eq!(c.delay, n.delay);
                    prop_assert_eq!(c.power_dbm.to_bits(), n.power_dbm.to_bits());
                    prop_assert_eq!(c.decodable, n.decodable);
                }
            }
            // Identical draw consumption: the next raw words agree.
            for _ in 0..4 {
                prop_assert_eq!(rng_cached.next_u64(), rng_naive.next_u64());
            }
        }

        /// Busy transitions alternate: the receiver never reports two
        /// BecameBusy (or two BecameIdle) in a row, no matter the interleaving
        /// of arrival/tx starts and ends.
        #[test]
        fn prop_busy_transitions_alternate(ops in proptest::collection::vec(0u8..4, 1..60)) {
            let mut rx = Receiver::new();
            let mut active: Vec<u64> = Vec::new();
            let mut next_id = 0u64;
            let mut transmitting = false;
            let mut last: Option<BusyTransition> = None;
            let check = |tr: Option<BusyTransition>, last: &mut Option<BusyTransition>| {
                if let Some(tr) = tr {
                    if let Some(prev) = *last {
                        prop_assert!(prev != tr, "two identical transitions in a row");
                    }
                    *last = Some(tr);
                }
                Ok(())
            };
            for (i, op) in ops.iter().enumerate() {
                let now = SimTime::from_micros(i as u64);
                match op {
                    0 => {
                        next_id += 1;
                        active.push(next_id);
                        let tr = rx.on_arrival_start(next_id, true, -60.0, now);
                        check(tr, &mut last)?;
                    }
                    1 if !active.is_empty() => {
                        let id = active.remove(0);
                        let (_, tr) = rx.on_arrival_end(id, now);
                        check(tr, &mut last)?;
                    }
                    2 if !transmitting => {
                        transmitting = true;
                        let tr = rx.on_tx_start(now);
                        check(tr, &mut last)?;
                    }
                    3 if transmitting => {
                        transmitting = false;
                        let tr = rx.on_tx_end(now);
                        check(tr, &mut last)?;
                    }
                    _ => {}
                }
            }
        }
    }
}
