//! Small numeric helpers: the standard-normal CDF used to turn shadowing
//! margins into analytic link delivery probabilities (needed for ETX route
//! selection, which the paper inherits from ExOR/MORE).

/// Error function, Abramowitz & Stegun 7.1.26 approximation.
///
/// Maximum absolute error ≈ 1.5e-7, far below what link-metric estimation
/// needs.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function Φ(x).
///
/// # Example
///
/// ```
/// let p = wmn_phy::math::normal_cdf(0.0);
/// assert!((p - 0.5).abs() < 1e-9);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Converts milliwatts to dBm.
///
/// # Panics
///
/// Panics if `mw` is not strictly positive.
pub fn mw_to_dbm(mw: f64) -> f64 {
    assert!(mw > 0.0, "power must be positive, got {mw} mW");
    10.0 * mw.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn erf_reference_points() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.841_344_75).abs() < 1e-5);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-4);
        assert!((normal_cdf(3.0) - 0.998_650_1).abs() < 1e-5);
    }

    #[test]
    fn mw_to_dbm_reference_points() {
        assert!((mw_to_dbm(1.0)).abs() < 1e-12);
        assert!((mw_to_dbm(1000.0) - 30.0).abs() < 1e-12);
        // Paper's transmit power: 281 mW ≈ 24.49 dBm.
        assert!((mw_to_dbm(281.0) - 24.487).abs() < 1e-2);
    }

    proptest! {
        /// Φ is monotone non-decreasing and bounded in [0, 1].
        #[test]
        fn prop_cdf_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let (pl, ph) = (normal_cdf(lo), normal_cdf(hi));
            prop_assert!((0.0..=1.0).contains(&pl));
            prop_assert!((0.0..=1.0).contains(&ph));
            prop_assert!(ph + 1e-12 >= pl);
        }

        /// erf is odd: erf(-x) = -erf(x).
        #[test]
        fn prop_erf_odd(x in -5.0f64..5.0) {
            prop_assert!((erf(-x) + erf(x)).abs() < 1e-12);
        }
    }
}
