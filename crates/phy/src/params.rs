//! The simulation parameter set (Table I of the paper) plus the radio
//! constants the paper inherits from NS-2's 802.11 model.
//!
//! | Parameter | Value |
//! |---|---|
//! | T_SIFS | 16 µs |
//! | Idle slot | 9 µs |
//! | Packet size | 1000 bytes |
//! | PHY data rate | 216 Mbps |
//! | PHY basic rate | 54 Mbps |
//! | Interface queue | 50 packets |
//! | T_phyhdr | 20 µs |
//! | Simulation time | 10 s |
//!
//! Shadowing: path-loss exponent 5, deviation 8 dB, transmit power 281 mW.

use wmn_sim::SimDuration;

use crate::math::mw_to_dbm;
use crate::propagation::Shadowing;
use crate::rate::Rate;

/// Speed of light, m/s, for propagation delay.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Complete PHY/MAC-timing parameter set for one simulation.
///
/// Constructed from the paper presets ([`PhyParams::paper_216`],
/// [`PhyParams::paper_6`]) and tweaked through the public fields; the struct
/// is a plain parameter record in the C spirit, so fields are public.
///
/// # Example
///
/// ```
/// use wmn_phy::PhyParams;
/// let mut p = PhyParams::paper_216();
/// p.ber = 1e-5; // switch to the paper's "noisy" channel state
/// assert_eq!(p.difs(), wmn_sim::SimDuration::from_micros(34));
/// ```
#[derive(Clone, Debug)]
pub struct PhyParams {
    /// Short interframe space (16 µs).
    pub sifs: SimDuration,
    /// Idle slot duration (9 µs).
    pub slot: SimDuration,
    /// PHY-layer header/preamble time (20 µs), rate-independent.
    pub phy_header: SimDuration,
    /// Data transmission rate.
    pub data_rate: Rate,
    /// Basic (control/ACK) transmission rate.
    pub basic_rate: Rate,
    /// Minimum contention window (slots − 1), i.e. CW ∈ [0, cw_min].
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Per-hop MAC retry limit before a frame is dropped.
    pub retry_limit: u8,
    /// Interface queue capacity, packets (Table I: 50).
    pub ifq_capacity: usize,
    /// Upper-layer packet size in bytes (Table I: 1000).
    pub packet_size: u32,
    /// Independent, identically distributed bit error rate.
    pub ber: f64,
    /// Transmit power in dBm (281 mW ≈ 24.49 dBm).
    pub tx_power_dbm: f64,
    /// Receive-sensitivity threshold in dBm: arrivals at or above this can be
    /// decoded.
    pub rx_thresh_dbm: f64,
    /// Carrier-sense threshold in dBm: arrivals at or above this make the
    /// channel busy.
    pub cs_thresh_dbm: f64,
    /// Log-normal shadowing propagation model parameters.
    pub shadowing: Shadowing,
}

impl PhyParams {
    /// Table-I parameters with the 216 Mbps data / 54 Mbps basic rates used
    /// by the TCP experiments. BER defaults to the "clear" 10⁻⁶ state.
    pub fn paper_216() -> Self {
        Self::base(Rate::mbps(216.0), Rate::mbps(54.0))
    }

    /// Table-I parameters at the 6 Mbps data and basic rates used for the
    /// VoIP (Table III) and low-rate Wigle/Roofnet experiments.
    pub fn paper_6() -> Self {
        Self::base(Rate::mbps(6.0), Rate::mbps(6.0))
    }

    fn base(data_rate: Rate, basic_rate: Rate) -> Self {
        PhyParams {
            sifs: SimDuration::from_micros(16),
            slot: SimDuration::from_micros(9),
            phy_header: SimDuration::from_micros(20),
            data_rate,
            basic_rate,
            cw_min: 15,
            cw_max: 1023,
            retry_limit: 7,
            ifq_capacity: 50,
            packet_size: 1000,
            ber: 1e-6,
            tx_power_dbm: mw_to_dbm(281.0),
            // Calibrated so that, with the paper's shadowing parameters
            // (β = 5, σ = 8 dB), adjacent stations ~5 m apart deliver ≈96 %
            // of frames, 10 m ≈ 47 %, 15 m ≈ 12 % — reproducing the regime
            // the paper engineers where one-hop routing is inefficient.
            rx_thresh_dbm: -65.0,
            cs_thresh_dbm: -78.0,
            shadowing: Shadowing::paper(),
        }
    }

    /// Returns a copy with the given bit-error rate (the paper's channel
    /// states are 10⁻⁵ "noisy" and 10⁻⁶ "clear").
    pub fn with_ber(mut self, ber: f64) -> Self {
        self.ber = ber;
        self
    }

    /// DIFS = SIFS + 2·slot (34 µs with Table-I values).
    pub fn difs(&self) -> SimDuration {
        self.sifs + self.slot * 2
    }

    /// Time on the air for a frame of `bytes` at `rate`, including the PHY
    /// header.
    pub fn airtime(&self, rate: Rate, bytes: u32) -> SimDuration {
        self.phy_header + rate.payload_airtime(bytes)
    }

    /// One-way propagation delay over `metres`.
    pub fn propagation_delay(&self, metres: f64) -> SimDuration {
        SimDuration::from_secs_f64(metres.max(0.0) / SPEED_OF_LIGHT)
    }

    /// Analytic probability that a frame transmitted over a link of length
    /// `metres` arrives above the receive threshold (shadowing only; bit
    /// errors are a separate process).
    pub fn link_delivery_probability(&self, metres: f64) -> f64 {
        self.shadowing.success_probability(self.tx_power_dbm, metres, self.rx_thresh_dbm)
    }

    /// Analytic probability that a transmission over `metres` is *sensed*
    /// (raises carrier sense) at the receiver.
    pub fn sense_probability(&self, metres: f64) -> f64 {
        self.shadowing.success_probability(self.tx_power_dbm, metres, self.cs_thresh_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difs_is_34us() {
        assert_eq!(PhyParams::paper_216().difs(), SimDuration::from_micros(34));
    }

    #[test]
    fn table1_values() {
        let p = PhyParams::paper_216();
        assert_eq!(p.sifs, SimDuration::from_micros(16));
        assert_eq!(p.slot, SimDuration::from_micros(9));
        assert_eq!(p.phy_header, SimDuration::from_micros(20));
        assert_eq!(p.packet_size, 1000);
        assert_eq!(p.ifq_capacity, 50);
        assert_eq!(p.data_rate.as_mbps(), 216.0);
        assert_eq!(p.basic_rate.as_mbps(), 54.0);
    }

    #[test]
    fn low_rate_preset() {
        let p = PhyParams::paper_6();
        assert_eq!(p.data_rate.as_mbps(), 6.0);
        assert_eq!(p.basic_rate.as_mbps(), 6.0);
    }

    #[test]
    fn airtime_includes_phy_header() {
        let p = PhyParams::paper_216();
        let t = p.airtime(p.data_rate, 1000);
        assert!((t.as_micros_f64() - (20.0 + 37.037)).abs() < 0.01);
    }

    #[test]
    fn with_ber_sets_only_ber() {
        let p = PhyParams::paper_216().with_ber(1e-5);
        assert_eq!(p.ber, 1e-5);
        assert_eq!(p.packet_size, 1000);
    }

    #[test]
    fn propagation_delay_scale() {
        let p = PhyParams::paper_216();
        // 30 m ≈ 100 ns.
        let d = p.propagation_delay(30.0);
        assert!((d.as_nanos() as f64 - 100.0).abs() < 2.0);
    }

    #[test]
    fn calibrated_link_quality_bands() {
        let p = PhyParams::paper_216();
        let close = p.link_delivery_probability(5.0);
        let mid = p.link_delivery_probability(10.0);
        let far = p.link_delivery_probability(15.0);
        assert!(close > 0.93, "5 m link should be good, got {close}");
        assert!((0.3..0.7).contains(&mid), "10 m link should be marginal, got {mid}");
        assert!(far < 0.25, "15 m link should be poor, got {far}");
        // Carrier sense reaches further than decoding.
        assert!(p.sense_probability(15.0) > p.link_delivery_probability(15.0));
    }
}
