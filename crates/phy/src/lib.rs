//! Radio/PHY substrate for the RIPPLE reproduction.
//!
//! The paper evaluates RIPPLE in NS-2 with two loss processes layered on top
//! of each other, both reproduced here:
//!
//! 1. a **log-normal shadowing** propagation model (path-loss exponent 5,
//!    shadowing deviation 8 dB, 281 mW transmit power) drawn independently
//!    per frame and per receiver — [`propagation`];
//! 2. an **i.i.d. bit-error model** (BER 10⁻⁵ "noisy" / 10⁻⁶ "clear")
//!    corrupting individual aggregated subframes — [`ber`].
//!
//! The crate also provides the Table-I timing parameters ([`params`]), frame
//! airtime arithmetic ([`rate`]), node placement ([`position`]), and the
//! reception state machine (with NS-2 capture semantics) shared by every MAC ([`medium`]).
//!
//! # Example
//!
//! ```
//! use wmn_phy::{PhyParams, Rate};
//!
//! let p = PhyParams::paper_216();
//! // A 1000-byte packet plus MAC overhead at 216 Mbps, preceded by the
//! // 20 us PHY header, is a few tens of microseconds on the air.
//! let t = p.airtime(Rate::mbps(216.0), 1028);
//! assert!(t.as_micros_f64() > 50.0 && t.as_micros_f64() < 70.0);
//! ```

pub mod ber;
pub mod math;
pub mod medium;
pub mod params;
pub mod position;
pub mod propagation;
pub mod rate;

pub use ber::BerModel;
pub use medium::{ArrivalOutcome, LinkClass, Medium, Receiver, RxPlan};
pub use params::PhyParams;
pub use position::Position;
pub use propagation::Shadowing;
pub use rate::Rate;
