//! VoIP capacity: how many simultaneous calls can the Fig. 1 mesh carry
//! before quality collapses? Reports mean opinion scores (MoS, 1–4.5) at a
//! 6 Mbps PHY for DCF, AFR and RIPPLE.
//!
//! ```sh
//! cargo run --release --example voip_call
//! ```

use wmn_experiments::table3::voip_flows;
use wmn_metrics::mean;
use wmn_netsim::{run, Scenario, Scheme};
use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

fn main() {
    let topo = wmn_topology::fig1::topology();
    println!("VoIP calls across the Fig. 1 mesh, 6 Mbps PHY, MoS (1=bad, 4.5=perfect)\n");
    println!("{:<8} {:>8} {:>8} {:>8}", "calls", "DCF", "AFR", "RIPPLE");
    for calls in [5usize, 10, 20, 30] {
        let mut row = Vec::new();
        for scheme in [
            Scheme::Dcf { aggregation: 1 },
            Scheme::Dcf { aggregation: 16 },
            Scheme::Ripple { aggregation: 16 },
        ] {
            let scenario = Scenario {
                name: format!("voip-{calls}"),
                params: PhyParams::paper_6(),
                positions: topo.positions.clone(),
                scheme,
                flows: voip_flows(calls),
                duration: SimDuration::from_secs_f64(2.0),
                seed: 5,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            };
            let result = run(&scenario);
            let moses: Vec<f64> =
                result.flows.iter().filter_map(|f| f.voip.map(|v| v.mos)).collect();
            row.push(mean(&moses));
        }
        println!("{:<8} {:>8.2} {:>8.2} {:>8.2}", calls, row[0], row[1], row[2]);
    }
    println!("\nMoS bands: <2 very annoying, ~3 annoying, ~4 fair, 4.5 perfect.");
}
