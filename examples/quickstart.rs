//! Quickstart: run one TCP flow over a 3-hop wireless chain under plain
//! 802.11 DCF and under RIPPLE, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};

fn main() {
    // Four stations in a line, 5 m apart: adjacent links are strong, the
    // end-to-end link is hopeless — the regime opportunistic routing is
    // designed for.
    let positions: Vec<Position> = (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect();
    let path: Vec<NodeId> = (0..4).map(NodeId::new).collect();

    println!("one long-lived TCP flow, 0 -> 1 -> 2 -> 3, 216 Mbps PHY, 2 s\n");
    println!("{:<22} {:>12} {:>12}", "scheme", "Mbps", "reordered");
    for (label, scheme) in [
        ("802.11 DCF", Scheme::Dcf { aggregation: 1 }),
        ("AFR (aggregation)", Scheme::Dcf { aggregation: 16 }),
        ("RIPPLE (no aggr.)", Scheme::Ripple { aggregation: 1 }),
        ("RIPPLE", Scheme::Ripple { aggregation: 16 }),
    ] {
        let scenario = Scenario {
            name: format!("quickstart-{label}"),
            params: PhyParams::paper_216(),
            positions: positions.clone(),
            scheme,
            flows: vec![FlowSpec { path: path.clone(), workload: Workload::Ftp }],
            duration: SimDuration::from_secs_f64(2.0),
            seed: 1,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        };
        let result = run(&scenario);
        let flow = &result.flows[0];
        let tcp = flow.tcp.expect("ftp is tcp");
        println!(
            "{:<22} {:>12.2} {:>11.2}%",
            label,
            flow.throughput_mbps,
            tcp.reorder_fraction() * 100.0
        );
    }
    println!("\nRIPPLE combines multi-hop TXOPs with two-way aggregation and");
    println!("never re-orders — which is why TCP likes it.");
}
