//! A community mesh scenario: several houses reach an Internet gateway
//! across a Roofnet-like mesh, 3–5 hops away. Compares per-house TCP
//! download throughput under DCF, AFR and RIPPLE.
//!
//! ```sh
//! cargo run --release --example mesh_gateway
//! ```

use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::PhyParams;
use wmn_sim::{NodeId, SimDuration};
use wmn_topology::roofnet;

fn main() {
    let topo = roofnet::topology();
    let params = PhyParams::paper_216();
    let graph = roofnet::link_graph(&params);

    // The gateway is the mesh's corner station; pick three houses at
    // increasing depths.
    let gateway = NodeId::new(0);
    let houses: Vec<NodeId> = [3usize, 4, 5]
        .iter()
        .filter_map(|&hops| {
            (0..topo.node_count() as u32)
                .map(NodeId::new)
                .find(|&n| graph.hop_count(gateway, n) == Some(hops))
        })
        .collect();

    println!("mesh gateway: {} houses download via station {gateway}\n", houses.len());
    println!("{:<10} {:>8} {:>10} {:>10} {:>10}", "house", "hops", "DCF", "AFR", "RIPPLE");

    for house in houses {
        let path = graph.shortest_path(gateway, house).expect("reachable");
        let hops = path.len() - 1;
        let mut row = Vec::new();
        for scheme in [
            Scheme::Dcf { aggregation: 1 },
            Scheme::Dcf { aggregation: 16 },
            Scheme::Ripple { aggregation: 16 },
        ] {
            let scenario = Scenario {
                name: format!("gateway-{house}"),
                params: params.clone(),
                positions: topo.positions.clone(),
                scheme,
                flows: vec![FlowSpec { path: path.clone(), workload: Workload::Ftp }],
                duration: SimDuration::from_secs_f64(1.5),
                seed: 3,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            };
            row.push(run(&scenario).flows[0].throughput_mbps);
        }
        println!(
            "{:<10} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            house.to_string(),
            hops,
            row[0],
            row[1],
            row[2]
        );
    }
    println!("\nthroughput in Mbps; deeper houses gain the most from RIPPLE's");
    println!("expedited multi-hop TXOPs.");
}
