//! Interactive web browsing over a mesh: many ON/OFF users with
//! Pareto-sized page loads (mean 80 KB, shape 1.5) and one-second think
//! times, as in Section IV-D of the paper.
//!
//! ```sh
//! cargo run --release --example web_browsing
//! ```

use wmn_experiments::fig8::web_flows;
use wmn_netsim::{run, Scenario, Scheme};
use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

fn main() {
    let topo = wmn_topology::fig1::topology();
    println!("web browsing on the Fig. 1 mesh: 10 users per station pair\n");
    println!("{:<22} {:>14} {:>16}", "scheme", "total Mbps", "busiest user Mbps");
    for (label, scheme) in [
        ("802.11 DCF", Scheme::Dcf { aggregation: 1 }),
        ("AFR (aggregation)", Scheme::Dcf { aggregation: 16 }),
        ("RIPPLE", Scheme::Ripple { aggregation: 16 }),
    ] {
        let scenario = Scenario {
            name: format!("web-{label}"),
            params: PhyParams::paper_216(),
            positions: topo.positions.clone(),
            scheme,
            flows: web_flows(10),
            duration: SimDuration::from_secs_f64(2.0),
            seed: 9,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        };
        let result = run(&scenario);
        let best = result.flows.iter().map(|f| f.throughput_mbps).fold(0.0f64, f64::max);
        println!("{:<22} {:>14.2} {:>16.2}", label, result.total_throughput_mbps, best);
    }
    println!("\nshort transfers benefit from RIPPLE immediately — no batching");
    println!("delay, unlike ExOR/MORE-style batch opportunistic routing.");
}
