//! Facade crate for the RIPPLE reproduction workspace.
//!
//! The implementation lives in the `wmn_*` crates (and `ripple` for the
//! scheme itself); this root package exists to own the cross-crate
//! integration tests in `tests/` and the examples in `examples/`, and
//! re-exports the sub-crates for convenience.

pub use ripple;
pub use wmn_experiments as experiments;
pub use wmn_mac as mac;
pub use wmn_metrics as metrics;
pub use wmn_netsim as netsim;
pub use wmn_phy as phy;
pub use wmn_routing as routing;
pub use wmn_sim as sim;
pub use wmn_topology as topology;
pub use wmn_traffic as traffic;
pub use wmn_transport as transport;
