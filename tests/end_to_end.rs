//! End-to-end integration tests spanning every crate: PHY → MAC → routing
//! → transport → application, driven through the public `wmn-netsim` API.

use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_routing::{forwarder_list, LinkGraph};
use wmn_sim::{NodeId, SimDuration};
use wmn_topology::{collision, fig1, line, roofnet, wigle};
use wmn_traffic::{CbrModel, VoipModel, WebModel};

fn scenario(scheme: Scheme, positions: Vec<Position>, flows: Vec<FlowSpec>, ms: u64) -> Scenario {
    Scenario {
        name: "e2e".into(),
        params: PhyParams::paper_216(),
        positions,
        scheme,
        flows,
        duration: SimDuration::from_millis(ms),
        seed: 11,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

fn chain(n: usize) -> (Vec<Position>, Vec<NodeId>) {
    let positions = (0..n).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect();
    let path = (0..n as u32).map(NodeId::new).collect();
    (positions, path)
}

#[test]
fn every_scheme_completes_a_transfer() {
    let (positions, path) = chain(4);
    for scheme in [
        Scheme::Dcf { aggregation: 1 },
        Scheme::Dcf { aggregation: 16 },
        Scheme::PreExor,
        Scheme::McExor,
        Scheme::Ripple { aggregation: 1 },
        Scheme::Ripple { aggregation: 16 },
    ] {
        let s = scenario(
            scheme,
            positions.clone(),
            vec![FlowSpec { path: path.clone(), workload: Workload::Ftp }],
            250,
        );
        let r = run(&s);
        assert!(
            r.flows[0].delivered_bytes > 20_000,
            "{scheme:?} must deliver data, got {}",
            r.flows[0].delivered_bytes
        );
    }
}

#[test]
fn all_fig1_flows_work_concurrently_under_ripple() {
    let topo = fig1::topology();
    let flows = (1..=3)
        .map(|f| FlowSpec { path: fig1::RouteSet::Route0.flow_path(f), workload: Workload::Ftp })
        .collect();
    let s = scenario(Scheme::Ripple { aggregation: 16 }, topo.positions, flows, 300);
    let r = run(&s);
    for (i, f) in r.flows.iter().enumerate() {
        assert!(f.delivered_bytes > 0, "flow {} starved", i + 1);
        assert_eq!(f.tcp.unwrap().reordered_arrivals, 0, "RIPPLE must not reorder flow {}", i + 1);
    }
}

#[test]
fn voip_and_tcp_coexist() {
    let topo = fig1::topology();
    let flows = vec![
        FlowSpec { path: fig1::RouteSet::Route0.flow_path(1), workload: Workload::Ftp },
        FlowSpec {
            path: fig1::RouteSet::Route0.flow_path(3),
            workload: Workload::Voip(VoipModel::paper()),
        },
    ];
    let s = scenario(Scheme::Ripple { aggregation: 16 }, topo.positions, flows, 500);
    let r = run(&s);
    assert!(r.flows[0].delivered_bytes > 0, "TCP flow starved");
    let voip = r.flows[1].voip.expect("voip result");
    assert!(voip.received > 0, "voice packets lost entirely");
}

#[test]
fn web_users_share_the_mesh() {
    let topo = fig1::topology();
    let flows: Vec<FlowSpec> = (0..6)
        .map(|i| FlowSpec {
            path: fig1::RouteSet::Route0.flow_path(1 + i % 3),
            workload: Workload::Web(WebModel::paper()),
        })
        .collect();
    let s = scenario(Scheme::Dcf { aggregation: 16 }, topo.positions, flows, 600);
    let r = run(&s);
    let total: u64 = r.flows.iter().map(|f| f.delivered_bytes).sum();
    assert!(total > 0, "web traffic must move");
}

#[test]
fn hidden_terminals_throttle_but_do_not_wedge() {
    let topo = collision::hidden_terminals(5);
    let mut flows = vec![FlowSpec { path: collision::hidden_main_path(), workload: Workload::Ftp }];
    for k in 0..5 {
        let (s, d) = collision::hidden_flow_endpoints(k);
        flows.push(FlowSpec { path: vec![s, d], workload: Workload::Cbr(CbrModel::saturating()) });
    }
    let s = scenario(Scheme::Ripple { aggregation: 16 }, topo.positions, flows, 400);
    let r = run(&s);
    // The main flow suffers but the simulation terminates and hidden flows
    // themselves move traffic.
    assert!(r.flows[1..].iter().any(|f| f.delivered_bytes > 0));
}

#[test]
fn seven_hop_chain_delivers_via_forwarders_only() {
    let topo = line::line(7, false);
    let s = scenario(
        Scheme::Ripple { aggregation: 16 },
        topo.positions,
        vec![FlowSpec { path: line::main_path(7), workload: Workload::Ftp }],
        500,
    );
    let r = run(&s);
    assert!(
        r.flows[0].delivered_bytes > 10_000,
        "7-hop RIPPLE must work end-to-end: {}",
        r.flows[0].delivered_bytes
    );
}

#[test]
fn wigle_flows_route_and_run() {
    let topo = wigle::topology();
    let graph = LinkGraph::from_placement(&PhyParams::paper_216(), &topo.positions);
    let (src, dst) = wigle::flow_pairs()[0];
    let path = graph.shortest_path(src, dst).unwrap();
    let s = scenario(
        Scheme::Ripple { aggregation: 16 },
        topo.positions,
        vec![FlowSpec { path, workload: Workload::Ftp }],
        300,
    );
    assert!(run(&s).flows[0].delivered_bytes > 0);
}

#[test]
fn roofnet_five_hop_flow_runs() {
    let topo = roofnet::topology();
    let graph = roofnet::link_graph(&PhyParams::paper_216());
    let (src, dst) = roofnet::pairs_with_hops(&graph, 5, 1)[0];
    let path = graph.shortest_path(src, dst).unwrap();
    let s = scenario(
        Scheme::Ripple { aggregation: 16 },
        topo.positions,
        vec![FlowSpec { path, workload: Workload::Ftp }],
        400,
    );
    assert!(run(&s).flows[0].delivered_bytes > 0);
}

#[test]
fn forwarder_lists_respect_the_paper_cap() {
    let path: Vec<NodeId> = (0..9).map(NodeId::new).collect();
    let list = forwarder_list(&path, wmn_routing::DEFAULT_MAX_FORWARDERS);
    assert_eq!(list.len(), 6, "destination + at most 5 forwarders");
}

#[test]
fn two_way_traffic_is_aggregated_both_directions() {
    // A TCP flow generates forward data and reverse ACK packets; under
    // RIPPLE-16 both directions must flow (the reverse direction is its own
    // set of mTXOPs per Section III-A).
    let (positions, path) = chain(4);
    let s = scenario(
        Scheme::Ripple { aggregation: 16 },
        positions,
        vec![FlowSpec { path, workload: Workload::Ftp }],
        300,
    );
    let r = run(&s);
    let tcp = r.flows[0].tcp.unwrap();
    assert!(tcp.segments_arrived > 50, "forward direction moved");
    // Data delivery implies the reverse (ACK) direction also worked, since
    // FTP only advances on acknowledgements.
    assert!(r.flows[0].delivered_bytes > 50_000);
}
