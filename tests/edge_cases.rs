//! Edge-case integration tests: degenerate paths, duplicate suppression
//! under forced retransmission, VoIP delay-tail accounting, and stats
//! plumbing.

use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};
use wmn_traffic::VoipModel;

fn base(scheme: Scheme, positions: Vec<Position>, flows: Vec<FlowSpec>) -> Scenario {
    Scenario {
        name: "edge".into(),
        params: PhyParams::paper_216(),
        positions,
        scheme,
        flows,
        duration: SimDuration::from_millis(300),
        seed: 7,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

/// A one-hop "path" (no forwarders at all) must work for every scheme —
/// the opportunistic list degenerates to [destination].
#[test]
fn degenerate_one_hop_paths() {
    let positions = vec![Position::new(0.0, 0.0), Position::new(4.0, 0.0)];
    for scheme in [
        Scheme::Dcf { aggregation: 1 },
        Scheme::Dcf { aggregation: 16 },
        Scheme::PreExor,
        Scheme::McExor,
        Scheme::Ripple { aggregation: 1 },
        Scheme::Ripple { aggregation: 16 },
    ] {
        let s = base(
            scheme,
            positions.clone(),
            vec![FlowSpec { path: vec![NodeId::new(0), NodeId::new(1)], workload: Workload::Ftp }],
        );
        let r = run(&s);
        assert!(
            r.flows[0].delivered_bytes > 50_000,
            "{scheme:?} must work on a single hop, got {}",
            r.flows[0].delivered_bytes
        );
    }
}

/// Two flows in opposite directions over the same chain (a "cross-ping")
/// both make progress — the bidirectional case RIPPLE's two-way
/// aggregation is designed for.
#[test]
fn opposing_flows_share_the_chain() {
    let positions: Vec<Position> = (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect();
    let forward: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    let mut backward = forward.clone();
    backward.reverse();
    let s = base(
        Scheme::Ripple { aggregation: 16 },
        positions,
        vec![
            FlowSpec { path: forward, workload: Workload::Ftp },
            FlowSpec { path: backward, workload: Workload::Ftp },
        ],
    );
    let r = run(&s);
    for (i, f) in r.flows.iter().enumerate() {
        assert!(f.delivered_bytes > 10_000, "direction {i} starved: {}", f.delivered_bytes);
        assert_eq!(f.tcp.unwrap().reordered_arrivals, 0);
    }
}

/// VoIP results expose the delay tail: p95 ≥ mean-ish, jitter finite, and
/// on a quiet chain the tail stays far below the 52 ms budget.
#[test]
fn voip_delay_tail_is_reported() {
    let positions: Vec<Position> = (0..3).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect();
    let mut s = base(
        Scheme::Ripple { aggregation: 16 },
        positions,
        vec![FlowSpec {
            path: (0..3).map(NodeId::new).collect(),
            workload: Workload::Voip(VoipModel::paper()),
        }],
    );
    s.duration = SimDuration::from_millis(900);
    let r = run(&s);
    let v = r.flows[0].voip.expect("voip result");
    assert!(v.received > 5, "need a delay sample, got {}", v.received);
    assert!(v.p95_delay >= v.mean_delay / 2, "p95 can't sit far below the mean");
    assert!(
        v.p95_delay < SimDuration::from_millis(20),
        "lone call on a quiet chain must have a tight tail: {:?}",
        v.p95_delay
    );
    assert!(v.jitter < SimDuration::from_millis(10), "jitter bounded: {:?}", v.jitter);
}

/// MAC statistics surface through RunResult and are self-consistent: the
/// stations on the path transmitted data; every delivered packet appears
/// in some MAC's delivered count.
#[test]
fn mac_stats_are_plumbed_through() {
    let positions: Vec<Position> = (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect();
    let s = base(
        Scheme::Dcf { aggregation: 16 },
        positions,
        vec![FlowSpec { path: (0..4).map(NodeId::new).collect(), workload: Workload::Ftp }],
    );
    let r = run(&s);
    assert_eq!(r.mac_stats.len(), 4);
    // The source transmitted data frames; the destination delivered.
    assert!(r.mac_stats[0].data_frames_sent > 0);
    assert!(r.mac_stats[3].delivered_up > 0);
    // Forwarding stations both received and re-sent.
    assert!(r.mac_stats[1].data_frames_sent > 0 && r.mac_stats[1].data_frames_received > 0);
    let total_delivered: u64 = r.mac_stats.iter().map(|m| m.delivered_up).sum();
    assert!(total_delivered as f64 >= r.flows[0].delivered_bytes as f64 / 1000.0);
}

/// Zero-length simulated durations yield empty-but-valid results.
#[test]
fn zero_duration_run_is_clean() {
    let positions = vec![Position::new(0.0, 0.0), Position::new(4.0, 0.0)];
    let mut s = base(
        Scheme::Ripple { aggregation: 16 },
        positions,
        vec![FlowSpec { path: vec![NodeId::new(0), NodeId::new(1)], workload: Workload::Ftp }],
    );
    s.duration = SimDuration::ZERO;
    let r = run(&s);
    assert_eq!(r.flows[0].delivered_bytes, 0);
    assert_eq!(r.flows[0].throughput_mbps, 0.0);
}
