//! Protocol-level invariants checked through full simulations, including
//! property-style sweeps over seeds and failure injection via hostile
//! channel conditions.

use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};

fn base(scheme: Scheme, ber: f64, seed: u64) -> Scenario {
    Scenario {
        name: "invariant".into(),
        params: PhyParams::paper_216().with_ber(ber),
        positions: (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect(),
        scheme,
        flows: vec![FlowSpec { path: (0..4).map(NodeId::new).collect(), workload: Workload::Ftp }],
        duration: SimDuration::from_millis(250),
        seed,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

/// RIPPLE never re-orders, across seeds and both channel states. This is
/// the protocol's core guarantee (Section III-A: "re-ordering caused by
/// relaying from forwarders will never happen").
#[test]
fn ripple_in_order_across_seeds_and_bers() {
    for seed in 1..=8 {
        for ber in [1e-6, 1e-5] {
            for agg in [1usize, 16] {
                let r = run(&base(Scheme::Ripple { aggregation: agg }, ber, seed));
                let tcp = r.flows[0].tcp.unwrap();
                assert_eq!(
                    tcp.reordered_arrivals, 0,
                    "RIPPLE(agg={agg}) reordered at seed {seed}, BER {ber}"
                );
            }
        }
    }
}

/// DCF and AFR (with the receiver-side reorder buffer) also deliver in
/// order — re-ordering is specific to the caching opportunistic schemes.
#[test]
fn predetermined_schemes_in_order() {
    for seed in 1..=5 {
        for agg in [1usize, 16] {
            let r = run(&base(Scheme::Dcf { aggregation: agg }, 1e-5, seed));
            let tcp = r.flows[0].tcp.unwrap();
            assert_eq!(tcp.reordered_arrivals, 0, "DCF(agg={agg}) reordered at seed {seed}");
        }
    }
}

/// Failure injection: a brutally noisy channel (BER 1e-4 ⇒ ~55 % subframe
/// loss) must degrade throughput but never wedge or crash any scheme.
#[test]
fn survives_brutal_bit_error_rates() {
    for scheme in [
        Scheme::Dcf { aggregation: 16 },
        Scheme::Ripple { aggregation: 16 },
        Scheme::PreExor,
        Scheme::McExor,
    ] {
        let hostile = run(&base(scheme, 1e-4, 3));
        let clear = run(&base(scheme, 1e-6, 3));
        assert!(
            hostile.flows[0].throughput_mbps <= clear.flows[0].throughput_mbps,
            "{scheme:?}: noise must not help"
        );
    }
}

/// Failure injection: a partitioned network (destination unreachable) —
/// the run terminates, delivers nothing, and does not panic.
#[test]
fn partitioned_network_terminates_cleanly() {
    for scheme in [Scheme::Dcf { aggregation: 1 }, Scheme::Ripple { aggregation: 16 }] {
        let scenario = Scenario {
            name: "partition".into(),
            params: PhyParams::paper_216(),
            positions: vec![Position::new(0.0, 0.0), Position::new(500.0, 0.0)],
            scheme,
            flows: vec![FlowSpec {
                path: vec![NodeId::new(0), NodeId::new(1)],
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(300),
            seed: 1,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        };
        let r = run(&scenario);
        assert_eq!(r.flows[0].delivered_bytes, 0, "{scheme:?}: nothing can cross a partition");
    }
}

/// Determinism: identical scenarios produce byte-identical results; the
/// seed is the only source of variation.
#[test]
fn determinism_across_all_schemes() {
    for scheme in [
        Scheme::Dcf { aggregation: 16 },
        Scheme::PreExor,
        Scheme::McExor,
        Scheme::Ripple { aggregation: 16 },
    ] {
        let a = run(&base(scheme, 1e-5, 42));
        let b = run(&base(scheme, 1e-5, 42));
        assert_eq!(
            a.flows[0].delivered_bytes, b.flows[0].delivered_bytes,
            "{scheme:?} must be deterministic"
        );
        assert_eq!(a.flows[0].tcp.unwrap().retransmits, b.flows[0].tcp.unwrap().retransmits);
    }
}

/// Throughput is (loosely) monotone in channel quality for the headline
/// scheme: clear ≥ noisy for every seed.
#[test]
fn ripple_monotone_in_channel_quality() {
    for seed in 1..=5 {
        let clear = run(&base(Scheme::Ripple { aggregation: 16 }, 1e-6, seed));
        let noisy = run(&base(Scheme::Ripple { aggregation: 16 }, 1e-5, seed));
        assert!(
            clear.flows[0].delivered_bytes * 11 >= noisy.flows[0].delivered_bytes * 10,
            "seed {seed}: clear {} should not lose badly to noisy {}",
            clear.flows[0].delivered_bytes,
            noisy.flows[0].delivered_bytes
        );
    }
}

/// The forwarder cap is honoured: a 9-node path under RIPPLE still works
/// with the default 5-forwarder list (the list simply skips the far
/// forwarders).
#[test]
fn long_path_with_forwarder_cap() {
    let scenario = Scenario {
        name: "cap".into(),
        params: PhyParams::paper_216(),
        positions: (0..8).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect(),
        scheme: Scheme::Ripple { aggregation: 16 },
        flows: vec![FlowSpec { path: (0..8).map(NodeId::new).collect(), workload: Workload::Ftp }],
        duration: SimDuration::from_millis(400),
        seed: 2,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    };
    let r = run(&scenario);
    // With only 5 forwarders on a 7-hop path the source's frames must hop
    // through the listed relays; delivery may be slow but non-zero.
    assert!(r.flows[0].delivered_bytes > 0);
    assert_eq!(r.flows[0].tcp.unwrap().reordered_arrivals, 0);
}

/// VoIP accounting invariants: received ≤ sent, loss ∈ [0,1], MoS ∈ [1,4.5].
#[test]
fn voip_accounting_invariants() {
    for seed in 1..=5 {
        let mut s = base(Scheme::Ripple { aggregation: 16 }, 1e-5, seed);
        s.flows[0].workload = Workload::Voip(wmn_traffic::VoipModel::paper());
        s.duration = SimDuration::from_millis(700);
        let r = run(&s);
        let v = r.flows[0].voip.unwrap();
        assert!(v.received <= v.sent, "seed {seed}: received {} > sent {}", v.received, v.sent);
        assert!((0.0..=1.0).contains(&v.loss_fraction));
        assert!((1.0..=4.5).contains(&v.mos));
    }
}
