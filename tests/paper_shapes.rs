//! Reproduction-shape tests: the qualitative claims of the paper's
//! evaluation, asserted against time-reduced experiment runs. Absolute
//! numbers differ from the paper (different substrate); the *orderings and
//! regimes* must hold.

use wmn_experiments::{common, ExpConfig};
use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};

fn cfg(ms: u64) -> ExpConfig {
    ExpConfig::custom(SimDuration::from_millis(ms), vec![1, 2])
}

fn chain_scenario(scheme: Scheme, ms: u64) -> Scenario {
    Scenario {
        name: "shape".into(),
        params: PhyParams::paper_216(),
        positions: (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect(),
        scheme,
        flows: vec![FlowSpec { path: (0..4).map(NodeId::new).collect(), workload: Workload::Ftp }],
        duration: SimDuration::from_millis(ms),
        seed: 1,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

/// Section II: "the performance of the preExOR and MCExOR schemes is
/// consistently worse than predetermined routing schemes" + both reorder a
/// substantial share of packets.
#[test]
fn motivation_shape_holds() {
    let table = wmn_experiments::motivation::generate(&cfg(500));
    let v = |r: usize, c: usize| table.cell(r, c).unwrap().parse::<f64>().unwrap();
    let (spr_tput, pre_tput, mce_tput) = (v(0, 1), v(1, 1), v(2, 1));
    assert!(spr_tput > pre_tput, "SPR {spr_tput} vs preExOR {pre_tput}");
    assert!(spr_tput > mce_tput, "SPR {spr_tput} vs MCExOR {mce_tput}");
    let (spr_ro, pre_ro, mce_ro) = (v(0, 2), v(1, 2), v(2, 2));
    assert!(spr_ro < 0.5, "SPR reorders ~nothing: {spr_ro}%");
    assert!(pre_ro > 2.0, "preExOR reorders substantially: {pre_ro}%");
    assert!(mce_ro > 2.0, "MCExOR reorders substantially: {mce_ro}%");
}

/// Fig. 3(a) headline: on ROUTE0 the ordering is S ≪ D < R1, A < R16 and
/// RIPPLE's full gain over DCF is at least 2×.
#[test]
fn fig3_route0_ordering() {
    let tables = wmn_experiments::fig3::generate(1e-6, &cfg(400));
    let t = &tables[0];
    let v = |r: usize| t.cell(r, 1).unwrap().parse::<f64>().unwrap();
    let (s, d, r1, a, r16) = (v(0), v(1), v(2), v(3), v(4));
    assert!(d > 5.0 * s, "direct S must be crippled: S={s} D={d}");
    assert!(r1 > d, "pure mTXOP beats DCF: R1={r1} D={d}");
    assert!(a > d, "pure aggregation beats DCF: A={a} D={d}");
    assert!(r16 > a, "both mechanisms beat either alone: R16={r16} A={a}");
    assert!(r16 > 2.0 * d, "paper reports 100-300% gains: R16={r16} D={d}");
}

/// Fig. 4: the noisy channel (BER 1e-5) lowers everyone but preserves the
/// winner.
#[test]
fn fig4_noisy_channel_preserves_winner() {
    let clear = wmn_experiments::fig3::generate(1e-6, &cfg(400));
    let noisy = wmn_experiments::fig3::generate(1e-5, &cfg(400));
    let v = |tables: &[wmn_metrics::Table], row: usize| {
        tables[0].cell(row, 1).unwrap().parse::<f64>().unwrap()
    };
    // RIPPLE stays on top under noise.
    let (noisy_d, noisy_r16) = (v(&noisy, 1), v(&noisy, 4));
    assert!(noisy_r16 > noisy_d, "RIPPLE wins under BER 1e-5 too");
    // And noise hurts RIPPLE's absolute throughput.
    assert!(v(&noisy, 4) < v(&clear, 4) * 1.1, "noise must not help");
}

/// Section IV-A ablation: both mechanisms contribute (this is the paper's
/// "the effectiveness of the RIPPLE scheme is due to both mTXOPs and packet
/// aggregation").
#[test]
fn ablation_both_mechanisms_contribute() {
    let dcf = run(&chain_scenario(Scheme::Dcf { aggregation: 1 }, 400));
    let r1 = run(&chain_scenario(Scheme::Ripple { aggregation: 1 }, 400));
    let afr = run(&chain_scenario(Scheme::Dcf { aggregation: 16 }, 400));
    let r16 = run(&chain_scenario(Scheme::Ripple { aggregation: 16 }, 400));
    let t = |r: &wmn_netsim::RunResult| r.flows[0].throughput_mbps;
    assert!(t(&r1) > t(&dcf), "mTXOP alone helps: {} vs {}", t(&r1), t(&dcf));
    assert!(t(&afr) > t(&dcf), "aggregation alone helps: {} vs {}", t(&afr), t(&dcf));
    assert!(t(&r16) > t(&afr), "mTXOP on top of aggregation helps: {} vs {}", t(&r16), t(&afr));
    assert!(t(&r16) > t(&r1), "aggregation on top of mTXOP helps: {} vs {}", t(&r16), t(&r1));
}

/// Fig. 7 shape: throughput decays with path length for every scheme, and
/// RIPPLE stays best at 7 hops where the endpoints are radio-disconnected.
#[test]
fn fig7_decay_and_long_path_win() {
    let tables = wmn_experiments::fig7::generate(&cfg(300));
    let t = &tables[0]; // without cross traffic
    let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
    for row in 0..3 {
        assert!(v(row, 1) > v(row, 6), "decay with hops (row {row})");
    }
    let (dcf7, ripple7) = (v(0, 6), v(2, 6));
    assert!(ripple7 > dcf7, "RIPPLE must beat DCF at 7 hops: {ripple7} vs {dcf7}");
}

/// Table III shape: at heavy VoIP load (30 calls) RIPPLE's MoS exceeds both
/// DCF's and AFR's.
#[test]
fn table3_heavy_load_mos_ordering() {
    let tables = wmn_experiments::table3::generate(&cfg(800));
    for t in &tables {
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        let (dcf30, afr30, ripple30) = (v(0, 3), v(1, 3), v(2, 3));
        assert!(
            ripple30 >= dcf30 - 0.15 && ripple30 >= afr30 - 0.15,
            "RIPPLE MoS at 30 calls must be at least competitive: \
             DCF {dcf30} AFR {afr30} RIPPLE {ripple30} ({})",
            t.title()
        );
    }
}

/// Fig. 10/12 headline: RIPPLE wins on most mesh flows (gains "up to
/// 200-300%" on some).
#[test]
fn mesh_topologies_favour_ripple() {
    let tables = wmn_experiments::fig10::generate(&cfg(250));
    let t = &tables[2]; // 216 Mbps, no hidden
    let mut ripple_wins = 0;
    let mut total = 0;
    for row in 0..t.row_count() {
        let dcf: f64 = t.cell(row, 1).unwrap().parse().unwrap();
        let ripple: f64 = t.cell(row, 3).unwrap().parse().unwrap();
        total += 1;
        if ripple > dcf {
            ripple_wins += 1;
        }
    }
    assert!(
        ripple_wins * 2 > total,
        "RIPPLE must win the majority of Wigle flows: {ripple_wins}/{total}"
    );
}

/// Aggregated schemes adapt frame sizes to load automatically (Section
/// III-A remark 5): a lone VoIP call (sparse packets) still gets through
/// with low delay under RIPPLE-16.
#[test]
fn zero_wait_aggregation_handles_sparse_traffic() {
    let mut s = chain_scenario(Scheme::Ripple { aggregation: 16 }, 600);
    s.flows[0].workload = Workload::Voip(wmn_traffic::VoipModel::paper());
    let r = run(&s);
    let voip = r.flows[0].voip.unwrap();
    assert!(voip.received > 0);
    assert!(
        voip.mean_delay < SimDuration::from_millis(10),
        "sparse VoIP must not wait for batches: {:?}",
        voip.mean_delay
    );
    assert!(voip.mos > 3.5, "lone call must score well: {}", voip.mos);
}

/// The figure scheme roster matches the paper's labels.
#[test]
fn scheme_roster_is_the_papers() {
    let labels: Vec<&str> = common::figure_schemes().iter().map(|s| s.0).collect();
    assert_eq!(labels, vec!["S", "D", "R1", "A", "R16"]);
}
