//! In-situ verification of the Fig. 2 mTXOP timeline: inside a *full*
//! simulation (channel, BER, event loop — everything live), a RIPPLE
//! forwarder's data relay must start exactly `rank·T_slot + T_SIFS` after
//! the transmission it overheard ended, and its ACK relay exactly
//! `(rank−1)·T_slot + T_SIFS` after the destination's ACK.

use wmn_netsim::trace::FrameKind;
use wmn_netsim::{run_traced, FlowSpec, Scenario, Scheme, TraceKind, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration, SimTime};
use wmn_traffic::CbrModel;

const SIFS_US: f64 = 16.0;
const SLOT_US: f64 = 9.0;
/// Propagation over 5 m is ~17 ns; allow a generous envelope.
const TOLERANCE_US: f64 = 0.1;

fn one_packet_scenario(seed: u64) -> Scenario {
    Scenario {
        name: "mtxop-timing".into(),
        params: PhyParams::paper_216(),
        positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0), Position::new(10.0, 0.0)],
        scheme: Scheme::Ripple { aggregation: 1 },
        flows: vec![FlowSpec {
            path: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            // One packet only: the CBR interval exceeds the duration.
            workload: Workload::Cbr(CbrModel::new(1000, SimDuration::from_secs_f64(10.0))),
        }],
        duration: SimDuration::from_millis(5),
        seed,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

fn us(t: SimTime) -> f64 {
    t.as_micros_f64()
}

#[test]
fn data_relay_starts_one_slot_plus_sifs_after_the_overheard_frame() {
    // The 10 m source->destination link succeeds ~47 % of the time, so scan
    // seeds until a run actually needed the forwarder's relay.
    let mut verified = false;
    for seed in 1..40 {
        let (_, trace) = run_traced(&one_packet_scenario(seed));
        let relays = trace.data_tx_starts(NodeId::new(1));
        let Some(relay) = relays.first() else { continue };
        // The transmission it overheard: the last TxEnd at the source
        // before the relay started.
        let source_tx_end = trace
            .events
            .iter()
            .rfind(|e| {
                e.node == NodeId::new(0) && e.at <= relay.at && matches!(e.kind, TraceKind::TxEnd)
            })
            .expect("the relay must follow a source transmission");
        let gap = us(relay.at) - us(source_tx_end.at);
        let expected = SIFS_US + SLOT_US; // rank 1
        assert!(
            (gap - expected).abs() < TOLERANCE_US,
            "seed {seed}: relay gap {gap:.3} us, expected {expected} us"
        );
        verified = true;
        break;
    }
    assert!(verified, "no run exercised the forwarder relay in 40 seeds");
}

#[test]
fn ack_relay_starts_one_sifs_after_the_destination_ack() {
    let mut verified = false;
    for seed in 1..60 {
        let (_, trace) = run_traced(&one_packet_scenario(seed));
        // The forwarder's ACK relay (an Ack TxStart at node 1).
        let ack_relay = trace.events.iter().find(|e| {
            e.node == NodeId::new(1)
                && matches!(e.kind, TraceKind::TxStart { kind: FrameKind::Ack, .. })
        });
        let Some(ack_relay) = ack_relay else { continue };
        // The destination's ACK transmission it overheard.
        let dest_tx_end = trace
            .events
            .iter()
            .rfind(|e| {
                e.node == NodeId::new(2)
                    && e.at <= ack_relay.at
                    && matches!(e.kind, TraceKind::TxEnd)
            })
            .expect("the ACK relay must follow the destination's ACK");
        let gap = us(ack_relay.at) - us(dest_tx_end.at);
        let expected = SIFS_US; // (rank 1 − 1)·slot + SIFS
        assert!(
            (gap - expected).abs() < TOLERANCE_US,
            "seed {seed}: ACK relay gap {gap:.3} us, expected {expected} us"
        );
        verified = true;
        break;
    }
    assert!(verified, "no run exercised the ACK relay in 60 seeds");
}

#[test]
fn destination_ack_follows_data_by_one_sifs() {
    let mut verified = false;
    for seed in 1..40 {
        let (_, trace) = run_traced(&one_packet_scenario(seed));
        let dest_ack = trace.events.iter().find(|e| {
            e.node == NodeId::new(2)
                && matches!(e.kind, TraceKind::TxStart { kind: FrameKind::Ack, .. })
        });
        let Some(dest_ack) = dest_ack else { continue };
        // The data transmission that triggered it ended at the last TxEnd
        // anywhere before the ACK (source or forwarder copy).
        let data_end = trace
            .events
            .iter()
            .rfind(|e| {
                e.node != NodeId::new(2)
                    && e.at <= dest_ack.at
                    && matches!(e.kind, TraceKind::TxEnd)
            })
            .expect("an ACK must follow a data frame");
        let gap = us(dest_ack.at) - us(data_end.at);
        assert!(
            (gap - SIFS_US).abs() < TOLERANCE_US,
            "seed {seed}: destination ACK gap {gap:.3} us, expected {SIFS_US} us"
        );
        verified = true;
        break;
    }
    assert!(verified, "no run exercised the destination ACK in 40 seeds");
}

#[test]
fn trace_records_end_to_end_delivery() {
    for seed in 1..20 {
        let (result, trace) = run_traced(&one_packet_scenario(seed));
        if result.flows[0].delivered_bytes > 0 {
            assert!(trace.delivered_count(wmn_sim::FlowId::new(0)) >= 1);
            assert!(!trace.is_empty());
            return;
        }
    }
    panic!("no delivery across 20 seeds on a 2-hop chain");
}
